//! Property-IRI interning.
//!
//! Records in this workspace are keyed by full property IRIs such as
//! `http://provider.example.org/vocab#partNumber`. Hashing and comparing
//! those strings in the per-pair comparison hot path is pure overhead:
//! the set of distinct properties is tiny (a handful per source) while
//! the number of lookups grows with `|SE| × |SL|`. The
//! [`PropertyInterner`] maps each distinct IRI to a dense [`PropertyId`]
//! exactly once, so every later lookup is an array index.
//!
//! Interned ids are **local to one interner** (and therefore to one
//! [`RecordStore`](crate::store::RecordStore)): the external and local
//! sources have different schemas, so their stores intern independently
//! and ids must never be mixed across stores. APIs that work across two
//! stores (blocking keys, attribute rules) resolve their IRIs against
//! each store once at construction — see
//! [`RecordComparator::compile`](crate::comparator::RecordComparator::compile).

use std::collections::HashMap;

/// A dense identifier for an interned property IRI.
///
/// Valid only for the [`PropertyInterner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PropertyId(pub u32);

impl PropertyId {
    /// The id as a column index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A symbol table assigning dense [`PropertyId`]s to property IRIs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropertyInterner {
    names: Vec<String>,
    ids: HashMap<String, PropertyId>,
}

impl PropertyInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id of `name`, interning it on first sight.
    pub fn intern(&mut self, name: &str) -> PropertyId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id =
            PropertyId(u32::try_from(self.names.len()).expect("more than u32::MAX properties"));
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// The id of `name`, if it has been interned.
    pub fn get(&self, name: &str) -> Option<PropertyId> {
        self.ids.get(name).copied()
    }

    /// The IRI behind an id.
    ///
    /// # Panics
    /// Panics when `id` did not come from this interner.
    pub fn resolve(&self, id: PropertyId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned properties.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// `(id, IRI)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (PropertyId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (PropertyId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut interner = PropertyInterner::new();
        assert!(interner.is_empty());
        let a = interner.intern("http://e.org/v#a");
        let b = interner.intern("http://e.org/v#b");
        assert_eq!(interner.intern("http://e.org/v#a"), a);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn lookup_and_resolution_round_trip() {
        let mut interner = PropertyInterner::new();
        let id = interner.intern("http://e.org/v#pn");
        assert_eq!(interner.get("http://e.org/v#pn"), Some(id));
        assert_eq!(interner.get("http://e.org/v#missing"), None);
        assert_eq!(interner.resolve(id), "http://e.org/v#pn");
    }

    #[test]
    fn iteration_preserves_interning_order() {
        let mut interner = PropertyInterner::new();
        interner.intern("b");
        interner.intern("a");
        let names: Vec<&str> = interner.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
        let ids: Vec<usize> = interner.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
