//! Crash-safe catalog persistence: checksummed shard snapshots, atomic
//! manifests, and corruption-recovering restart.
//!
//! A [`ShardedStore`] is already flat — per-property text arenas plus
//! `u32` offset arrays — so the on-disk format is a direct dump of those
//! extents, not a re-encoding:
//!
//! ```text
//!  <dir>/
//!    MANIFEST-00000002          ← commit point (newest generation)
//!    MANIFEST-00000001          ← previous generation (retained for fallback)
//!    schema-4f1c….clschema      ← interner snapshot (property IRIs in id order)
//!    shard-a90b….clshard        ← shard 0 (ids + columns + full text)
//!    shard-77de….clshard        ← shard 1
//!
//!  shard/schema file:  magic ─ version ─ section count ─ sections…
//!  section:            tag ─ length ─ payload ─ XXH64(payload, seed=tag)
//!  manifest (text):    header ─ generation ─ schema line ─ shard lines
//!                      ─ "seal <XXH64 of everything above>"
//! ```
//!
//! **Data files are content-addressed**: the file name embeds the XXH64
//! of the file's bytes (the same hash the manifest records), so a shard
//! that already exists on disk is never rewritten. Snapshotting an
//! appended catalog therefore spills only the new shards — the commit
//! cost of an incremental snapshot is O(delta), like the append itself.
//!
//! **The manifest rename is the commit point.** A snapshot writes every
//! data file (temp file, fsync, rename), then the manifest the same way:
//! `MANIFEST-<gen>.tmp` → fsync → rename to `MANIFEST-<gen>` → fsync the
//! directory. A crash anywhere before the rename leaves the previous
//! manifest — and every file it references — untouched; the leftover
//! temp/orphan files are swept by the next [`CatalogSnapshot::open`].
//!
//! **`open` trusts nothing.** Every referenced file is re-hashed against
//! the manifest, every section checksum is verified, and every decoded
//! structure is bounds-checked before a [`ShardedStore`] is assembled —
//! a snapshot that fails any check is *discarded as a whole* and the
//! loader falls back to the previous manifest generation, reporting what
//! it skipped through a [`RecoveryReport`]. Corrupt manifests, temp
//! files and unreferenced data files are deleted on the way out, and the
//! two newest valid generations are retained so the *next* crash also
//! has a fallback. The loader never panics on corrupt input and never
//! returns a partially-loaded catalog.

use crate::intern::PropertyInterner;
use crate::shard::ShardedStore;
use crate::store::RecordStore;
use classilink_rdf::{Literal, Term};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use twox_hash::XxHash64;

const SHARD_MAGIC: &[u8; 8] = b"CLSHRD01";
const SCHEMA_MAGIC: &[u8; 8] = b"CLSCHM01";
const FORMAT_VERSION: u32 = 1;
const MANIFEST_HEADER: &str = "classilink-manifest v1";
const MANIFEST_PREFIX: &str = "MANIFEST-";
const TMP_SUFFIX: &str = ".tmp";
const SHARD_EXT: &str = "clshard";
const SCHEMA_EXT: &str = "clschema";
/// Valid manifest generations retained by the sweep: the newest (the
/// restart point) plus one predecessor (the fallback if the newest is
/// torn by the next crash).
const RETAINED_GENERATIONS: usize = 2;

const SECTION_IDS: u32 = 1;
const SECTION_COLUMNS: u32 = 2;
const SECTION_FULL_TEXT: u32 = 3;
const SECTION_SCHEMA: u32 = 4;

fn xxh64(seed: u64, bytes: &[u8]) -> u64 {
    XxHash64::oneshot(seed, bytes)
}

/// A persistence failure. Every variant names the file (or directory)
/// involved, so a production log line is actionable without a debugger.
#[derive(Debug, Clone)]
pub enum PersistError {
    /// An I/O operation failed.
    Io {
        /// What the operation was doing (e.g. `"write shard file"`).
        op: &'static str,
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The underlying I/O error (shared so the variant stays
        /// cloneable; exposed through [`std::error::Error::source`]).
        source: Arc<io::Error>,
    },
    /// A snapshot file failed checksum or structural validation.
    Corrupt {
        /// The corrupt file.
        path: PathBuf,
        /// Which check failed.
        detail: String,
    },
    /// The directory holds no manifest at all — nothing was ever
    /// committed there (or the directory does not exist).
    NoSnapshot {
        /// The snapshot directory.
        dir: PathBuf,
    },
    /// Manifests exist but every generation failed validation; the
    /// catalog cannot be restored from this directory.
    NoUsableGeneration {
        /// The snapshot directory.
        dir: PathBuf,
        /// Per-manifest failure summaries, newest first.
        detail: String,
    },
}

impl PersistError {
    fn io(op: &'static str, path: &Path, source: io::Error) -> Self {
        PersistError::Io {
            op,
            path: path.to_path_buf(),
            source: Arc::new(source),
        }
    }

    fn corrupt(path: &Path, detail: impl Into<String>) -> Self {
        PersistError::Corrupt {
            path: path.to_path_buf(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, path, source } => {
                write!(f, "{op} failed for {}: {source}", path.display())
            }
            PersistError::Corrupt { path, detail } => {
                write!(f, "snapshot file {} is corrupt: {detail}", path.display())
            }
            PersistError::NoSnapshot { dir } => {
                write!(
                    f,
                    "no catalog snapshot in {}: no manifest found",
                    dir.display()
                )
            }
            PersistError::NoUsableGeneration { dir, detail } => {
                write!(
                    f,
                    "no usable manifest generation in {}: {detail}",
                    dir.display()
                )
            }
        }
    }
}

impl std::error::Error for PersistError {
    /// [`PersistError::Io`] exposes the wrapped [`io::Error`]; the
    /// validation variants originate here and have no source.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Structural equality. [`io::Error`] itself is not comparable, so the
/// `Io` variant compares the error's kind and rendering — exactly what a
/// test (or a retry classifier) can observe.
impl PartialEq for PersistError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                PersistError::Io { op, path, source },
                PersistError::Io {
                    op: op2,
                    path: path2,
                    source: source2,
                },
            ) => {
                op == op2
                    && path == path2
                    && source.kind() == source2.kind()
                    && source.to_string() == source2.to_string()
            }
            (
                PersistError::Corrupt { path, detail },
                PersistError::Corrupt {
                    path: path2,
                    detail: detail2,
                },
            ) => path == path2 && detail == detail2,
            (PersistError::NoSnapshot { dir }, PersistError::NoSnapshot { dir: dir2 }) => {
                dir == dir2
            }
            (
                PersistError::NoUsableGeneration { dir, detail },
                PersistError::NoUsableGeneration {
                    dir: dir2,
                    detail: detail2,
                },
            ) => dir == dir2 && detail == detail2,
            _ => false,
        }
    }
}

impl Eq for PersistError {}

/// What [`CatalogSnapshot::write`] committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotReceipt {
    /// The committed manifest generation.
    pub generation: u64,
    /// Path of the committed manifest file.
    pub manifest: PathBuf,
    /// Shard files written by this snapshot.
    pub shards_written: usize,
    /// Shard files already on disk from an earlier generation
    /// (content-addressed reuse — the incremental-snapshot path).
    pub shards_reused: usize,
    /// Bytes physically written (data files actually spilled plus the
    /// manifest itself).
    pub bytes_written: u64,
    /// Total bytes the committed generation references on disk
    /// (schema + every shard + manifest), whether written now or reused.
    pub total_bytes: u64,
    /// Files deleted by the post-commit retention sweep.
    pub swept: Vec<String>,
}

/// What [`CatalogSnapshot::open`] did to restore the catalog.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// The manifest generation the catalog was restored from.
    pub generation: u64,
    /// `true` when the newest manifest failed validation and the loader
    /// fell back to an earlier generation.
    pub recovered_from_fallback: bool,
    /// `(manifest file, reason)` for every generation that was tried and
    /// discarded, newest first.
    pub discarded: Vec<(String, String)>,
    /// Orphaned files deleted on open: temp files, discarded or
    /// out-of-retention manifests, and data files no retained manifest
    /// references.
    pub swept: Vec<String>,
    /// Shards in the restored catalog.
    pub shards: usize,
    /// Records in the restored catalog.
    pub records: usize,
}

/// The snapshot writer/loader pair. See the [module docs](self) for the
/// on-disk layout and the commit/recovery protocol.
pub struct CatalogSnapshot;

// ---------------------------------------------------------------------
// Serialization primitives
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_u32_slice(out: &mut Vec<u8>, values: &[u32]) {
    put_u64(out, values.len() as u64);
    for &v in values {
        put_u32(out, v);
    }
}

/// Append one checksummed section: tag, payload length, payload, then
/// the payload's XXH64 **seeded with the tag** — a section of one kind
/// can never masquerade as another even if lengths happen to line up.
fn put_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    put_u32(out, tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_u64(out, xxh64(u64::from(tag), payload));
}

fn put_term(out: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push(0);
            put_str(out, iri);
        }
        Term::Blank(label) => {
            out.push(1);
            put_str(out, label);
        }
        Term::Literal(literal) => {
            out.push(2);
            put_str(out, &literal.value);
            let flags =
                u8::from(literal.language.is_some()) | (u8::from(literal.datatype.is_some()) << 1);
            out.push(flags);
            if let Some(language) = &literal.language {
                put_str(out, language);
            }
            if let Some(datatype) = &literal.datatype {
                put_str(out, datatype);
            }
        }
    }
}

/// Serialize one shard store: magic, version, then the three checksummed
/// sections (ids, columns, full text).
fn serialize_shard(store: &RecordStore) -> Vec<u8> {
    // Models a fault while flattening one shard (e.g. an OOM mid-spill):
    // the manifest is never reached, so the previous generation stays
    // the restart point.
    fail::fail_point!("persist::serialize_shard");
    let mut ids = Vec::new();
    put_u64(&mut ids, store.len() as u64);
    for term in store.persist_ids() {
        put_term(&mut ids, term);
    }

    let mut columns = Vec::new();
    put_u64(&mut columns, store.column_count() as u64);
    for c in 0..store.column_count() {
        let (text, bounds, offsets) = store.persist_column(c);
        put_str(&mut columns, text);
        put_u32_slice(&mut columns, bounds);
        put_u32_slice(&mut columns, offsets);
    }

    let mut full_text = Vec::new();
    let (text, bounds) = store.persist_full_text();
    put_str(&mut full_text, text);
    put_u32_slice(&mut full_text, bounds);

    let mut out = Vec::with_capacity(ids.len() + columns.len() + full_text.len() + 64);
    out.extend_from_slice(SHARD_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, 3);
    put_section(&mut out, SECTION_IDS, &ids);
    put_section(&mut out, SECTION_COLUMNS, &columns);
    put_section(&mut out, SECTION_FULL_TEXT, &full_text);
    out
}

/// Serialize the schema: the interned property IRIs in id order (the
/// loader reproduces identical ids by re-interning them in order).
fn serialize_schema(schema: &PropertyInterner) -> Vec<u8> {
    let mut names = Vec::new();
    put_u64(&mut names, schema.len() as u64);
    for (_, name) in schema.iter() {
        put_str(&mut names, name);
    }
    let mut out = Vec::with_capacity(names.len() + 40);
    out.extend_from_slice(SCHEMA_MAGIC);
    put_u32(&mut out, FORMAT_VERSION);
    put_u32(&mut out, 1);
    put_section(&mut out, SECTION_SCHEMA, &names);
    out
}

// ---------------------------------------------------------------------
// Deserialization: a bounds-checked cursor. Corrupt input must surface
// as PersistError::Corrupt, never as a panic or an out-of-range index.
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], path: &'a Path) -> Self {
        Reader { buf, pos: 0, path }
    }

    fn corrupt(&self, detail: impl Into<String>) -> PersistError {
        PersistError::corrupt(self.path, detail)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if n > self.remaining() {
            return Err(self.corrupt(format!(
                "truncated: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length-prefixed count that must be realisable from the bytes
    /// that remain (`width` = minimum encoded bytes per element) — caps
    /// allocations on files whose lengths lie.
    fn count(&mut self, width: usize) -> Result<usize, PersistError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| self.corrupt("count exceeds usize"))?;
        if n.checked_mul(width)
            .is_none_or(|total| total > self.remaining())
        {
            return Err(self.corrupt(format!(
                "claimed {n} elements but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let n = self.count(1)?;
        self.take(n)
    }

    fn str(&mut self) -> Result<&'a str, PersistError> {
        let bytes = self.bytes()?;
        std::str::from_utf8(bytes).map_err(|_| self.corrupt("string is not valid UTF-8"))
    }

    fn string(&mut self) -> Result<String, PersistError> {
        Ok(self.str()?.to_string())
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, PersistError> {
        let n = self.count(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn term(&mut self) -> Result<Term, PersistError> {
        match self.u8()? {
            0 => Ok(Term::Iri(self.string()?)),
            1 => Ok(Term::Blank(self.string()?)),
            2 => {
                let value = self.string()?;
                let flags = self.u8()?;
                if flags & !0b11 != 0 {
                    return Err(self.corrupt(format!("unknown literal flags {flags:#04x}")));
                }
                let language = (flags & 0b01 != 0).then(|| self.string()).transpose()?;
                let datatype = (flags & 0b10 != 0).then(|| self.string()).transpose()?;
                Ok(Term::Literal(Literal {
                    value,
                    language,
                    datatype,
                }))
            }
            kind => Err(self.corrupt(format!("unknown term kind {kind}"))),
        }
    }

    fn expect_done(&self) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(self.corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

/// Read the file header and return the checksum-verified section
/// payloads, in order.
fn read_sections<'a>(
    reader: &mut Reader<'a>,
    magic: &[u8; 8],
    expected: &[u32],
) -> Result<Vec<&'a [u8]>, PersistError> {
    if reader.take(8)? != magic {
        return Err(reader.corrupt("bad magic (not a classilink snapshot file)"));
    }
    let version = reader.u32()?;
    if version != FORMAT_VERSION {
        return Err(reader.corrupt(format!(
            "unsupported format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let count = reader.u32()? as usize;
    if count != expected.len() {
        return Err(reader.corrupt(format!(
            "expected {} sections, file declares {count}",
            expected.len()
        )));
    }
    let mut sections = Vec::with_capacity(count);
    for &tag in expected {
        let actual = reader.u32()?;
        if actual != tag {
            return Err(reader.corrupt(format!("expected section {tag}, found {actual}")));
        }
        let len = reader.u64()?;
        let len = usize::try_from(len).map_err(|_| reader.corrupt("section length overflow"))?;
        let payload = reader.take(len)?;
        let checksum = reader.u64()?;
        let computed = xxh64(u64::from(tag), payload);
        if checksum != computed {
            return Err(reader.corrupt(format!(
                "section {tag} checksum mismatch (stored {checksum:016x}, computed {computed:016x})"
            )));
        }
        sections.push(payload);
    }
    reader.expect_done()?;
    Ok(sections)
}

/// Decode one shard file into a [`RecordStore`] on the shared schema.
fn decode_shard(
    path: &Path,
    bytes: &[u8],
    schema: &Arc<PropertyInterner>,
) -> Result<RecordStore, PersistError> {
    // Models a corrupt-on-read shard (e.g. a latent media error the
    // checksum catches in production): the whole generation is discarded
    // and the loader falls back, exactly like real corruption.
    fail::fail_point!("persist::load_shard", |arg: Option<String>| {
        Err(PersistError::corrupt(
            path,
            format!(
                "injected failure at failpoint 'persist::load_shard': {}",
                arg.unwrap_or_default()
            ),
        ))
    });
    let mut reader = Reader::new(bytes, path);
    let sections = read_sections(
        &mut reader,
        SHARD_MAGIC,
        &[SECTION_IDS, SECTION_COLUMNS, SECTION_FULL_TEXT],
    )?;

    let mut ids_reader = Reader::new(sections[0], path);
    let record_count = ids_reader.count(2)?;
    let mut ids = Vec::with_capacity(record_count);
    for _ in 0..record_count {
        ids.push(ids_reader.term()?);
    }
    ids_reader.expect_done()?;

    let mut columns_reader = Reader::new(sections[1], path);
    let column_count = columns_reader.count(24)?;
    let mut columns = Vec::with_capacity(column_count);
    for _ in 0..column_count {
        let text = columns_reader.string()?;
        let bounds = columns_reader.u32_vec()?;
        let offsets = columns_reader.u32_vec()?;
        columns.push((text, bounds, offsets));
    }
    columns_reader.expect_done()?;

    let mut full_text_reader = Reader::new(sections[2], path);
    let full_text = full_text_reader.string()?;
    let full_text_bounds = full_text_reader.u32_vec()?;
    full_text_reader.expect_done()?;

    RecordStore::from_persisted_parts(
        Arc::clone(schema),
        ids,
        columns,
        full_text,
        full_text_bounds,
    )
    .map_err(|detail| PersistError::corrupt(path, detail))
}

fn decode_schema(path: &Path, bytes: &[u8]) -> Result<PropertyInterner, PersistError> {
    let mut reader = Reader::new(bytes, path);
    let sections = read_sections(&mut reader, SCHEMA_MAGIC, &[SECTION_SCHEMA])?;
    let mut names_reader = Reader::new(sections[0], path);
    let count = names_reader.count(8)?;
    let mut names = Vec::with_capacity(count);
    for _ in 0..count {
        names.push(names_reader.string()?);
    }
    names_reader.expect_done()?;
    PropertyInterner::from_names(names).map_err(|detail| PersistError::corrupt(path, detail))
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct ManifestEntry {
    file: String,
    len: u64,
    hash: u64,
    records: u64,
}

#[derive(Debug, Clone)]
struct Manifest {
    generation: u64,
    schema: ManifestEntry,
    shards: Vec<ManifestEntry>,
}

fn manifest_name(generation: u64) -> String {
    format!("{MANIFEST_PREFIX}{generation:08}")
}

/// The generation encoded in a manifest file name, if it is one.
fn manifest_generation(name: &str) -> Option<u64> {
    let digits = name.strip_prefix(MANIFEST_PREFIX)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn render_manifest(manifest: &Manifest) -> String {
    let mut out = String::new();
    out.push_str(MANIFEST_HEADER);
    out.push('\n');
    out.push_str(&format!("generation {}\n", manifest.generation));
    let entry = &manifest.schema;
    out.push_str(&format!(
        "schema {} {} {:016x}\n",
        entry.file, entry.len, entry.hash
    ));
    for entry in &manifest.shards {
        out.push_str(&format!(
            "shard {} {} {:016x} {}\n",
            entry.file, entry.len, entry.hash, entry.records
        ));
    }
    let seal = xxh64(0, out.as_bytes());
    out.push_str(&format!("seal {seal:016x}\n"));
    out
}

/// A file name a manifest may legitimately reference: something this
/// module itself would generate, never a path that escapes the snapshot
/// directory.
fn safe_file_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'.')
        && !name.starts_with('.')
}

/// Parse and seal-verify a manifest. Any deviation — bad header, missing
/// or wrong seal (truncation, bit flip), malformed line, generation not
/// matching the file name, unsafe file name, zero shards — is `Corrupt`.
fn parse_manifest(
    path: &Path,
    generation_from_name: u64,
    bytes: &[u8],
) -> Result<Manifest, PersistError> {
    let corrupt = |detail: String| PersistError::corrupt(path, detail);
    let text =
        std::str::from_utf8(bytes).map_err(|_| corrupt("manifest is not UTF-8".to_string()))?;
    let seal_start = text
        .rfind("seal ")
        .filter(|&i| i == 0 || bytes[i - 1] == b'\n')
        .ok_or_else(|| corrupt("missing seal line (truncated?)".to_string()))?;
    let seal_line = &text[seal_start..];
    let seal_hex = seal_line
        .strip_prefix("seal ")
        .and_then(|rest| rest.strip_suffix('\n'))
        .filter(|hex| hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()))
        .ok_or_else(|| corrupt("malformed seal line".to_string()))?;
    let stored_seal = u64::from_str_radix(seal_hex, 16).expect("validated hex");
    let computed_seal = xxh64(0, &bytes[..seal_start]);
    if stored_seal != computed_seal {
        return Err(corrupt(format!(
            "seal mismatch (stored {stored_seal:016x}, computed {computed_seal:016x}) — \
             the manifest was truncated or altered"
        )));
    }

    let parse_entry =
        |line: &str, kind: &str, fields: usize| -> Result<ManifestEntry, PersistError> {
            let parts: Vec<&str> = line.split(' ').collect();
            if parts.len() != fields || parts[0] != kind {
                return Err(corrupt(format!("malformed {kind} line: {line:?}")));
            }
            let file = parts[1].to_string();
            if !safe_file_name(&file) {
                return Err(corrupt(format!("unsafe file name in manifest: {file:?}")));
            }
            let len = parts[2]
                .parse()
                .map_err(|_| corrupt(format!("bad length in {kind} line: {line:?}")))?;
            let hash = u64::from_str_radix(parts[3], 16)
                .map_err(|_| corrupt(format!("bad hash in {kind} line: {line:?}")))?;
            let records = if fields == 5 {
                parts[4]
                    .parse()
                    .map_err(|_| corrupt(format!("bad record count in {kind} line: {line:?}")))?
            } else {
                0
            };
            Ok(ManifestEntry {
                file,
                len,
                hash,
                records,
            })
        };

    let mut lines = text[..seal_start].lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(corrupt("missing manifest header".to_string()));
    }
    let generation = lines
        .next()
        .and_then(|line| line.strip_prefix("generation "))
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| corrupt("missing generation line".to_string()))?;
    if generation != generation_from_name {
        return Err(corrupt(format!(
            "generation line says {generation} but the file name says {generation_from_name}"
        )));
    }
    let schema = parse_entry(
        lines
            .next()
            .ok_or_else(|| corrupt("missing schema line".to_string()))?,
        "schema",
        4,
    )?;
    let mut shards = Vec::new();
    for line in lines {
        shards.push(parse_entry(line, "shard", 5)?);
    }
    if shards.is_empty() {
        return Err(corrupt("manifest references no shards".to_string()));
    }
    Ok(Manifest {
        generation,
        schema,
        shards,
    })
}

// ---------------------------------------------------------------------
// Durable file primitives
// ---------------------------------------------------------------------

/// Write `bytes` to `path` and fsync the file (create-or-truncate).
fn write_file_sync(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let mut file = fs::File::create(path).map_err(|e| PersistError::io("create file", path, e))?;
    file.write_all(bytes)
        .map_err(|e| PersistError::io("write file", path, e))?;
    file.sync_all()
        .map_err(|e| PersistError::io("fsync file", path, e))
}

/// fsync the directory itself, making a completed rename durable.
fn sync_dir(dir: &Path) -> Result<(), PersistError> {
    fs::File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| PersistError::io("fsync directory", dir, e))
}

/// Spill one content-addressed data file (`<prefix>-<hash16>.<ext>`)
/// durably, unless a file of that name — and therefore that content —
/// already exists. Returns the manifest entry and whether bytes hit disk.
fn write_data_file(
    dir: &Path,
    prefix: &str,
    ext: &str,
    bytes: &[u8],
) -> Result<(ManifestEntry, bool), PersistError> {
    let hash = xxh64(0, bytes);
    let file = format!("{prefix}-{hash:016x}.{ext}");
    let path = dir.join(&file);
    // Models a full disk / permission fault on one data file: the write
    // fails cleanly before the manifest commit point.
    fail::fail_point!("persist::write_shard", |arg: Option<String>| {
        Err(PersistError::io(
            "write data file (injected)",
            &path,
            io::Error::other(arg.unwrap_or_default()),
        ))
    });
    let entry = ManifestEntry {
        file: file.clone(),
        len: bytes.len() as u64,
        hash,
        records: 0,
    };
    match fs::metadata(&path) {
        // Same name ⇒ same XXH64 ⇒ same content: skip the write. The
        // length check guards the (already astronomically unlikely)
        // hash-collision case at zero cost.
        Ok(meta) if meta.is_file() && meta.len() == bytes.len() as u64 => {
            return Ok((entry, false));
        }
        _ => {}
    }
    let tmp = dir.join(format!("{file}{TMP_SUFFIX}"));
    write_file_sync(&tmp, bytes)?;
    fs::rename(&tmp, &path).map_err(|e| PersistError::io("rename data file", &path, e))?;
    Ok((entry, true))
}

// ---------------------------------------------------------------------
// Directory listing & sweep
// ---------------------------------------------------------------------

/// UTF-8 file names in `dir`, sorted (deterministic sweep order).
fn list_file_names(dir: &Path) -> Result<Vec<String>, PersistError> {
    let entries = fs::read_dir(dir).map_err(|e| PersistError::io("read directory", dir, e))?;
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| PersistError::io("read directory", dir, e))?;
        if let Ok(name) = entry.file_name().into_string() {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

/// Manifest `(generation, file name)` pairs in `names`, newest first.
fn manifest_files(names: &[String]) -> Vec<(u64, String)> {
    let mut manifests: Vec<(u64, String)> = names
        .iter()
        .filter_map(|name| Some((manifest_generation(name)?, name.clone())))
        .collect();
    manifests.sort_by_key(|&(generation, _)| std::cmp::Reverse(generation));
    manifests
}

/// Delete everything no retained manifest justifies: temp files,
/// manifests that are corrupt / in `discard` / beyond the retention
/// horizon, and data files no retained manifest references. Files this
/// module did not name (no recognised suffix) are left alone. Deletion
/// is best-effort — a sweep failure must never fail a committed snapshot
/// or a successful restore — and returns the names actually deleted.
fn sweep(dir: &Path, discard: &HashSet<u64>) -> Vec<String> {
    let Ok(names) = list_file_names(dir) else {
        return Vec::new();
    };
    let mut retained = 0usize;
    let mut keep_manifests: HashSet<String> = HashSet::new();
    let mut referenced: HashSet<String> = HashSet::new();
    for (generation, name) in manifest_files(&names) {
        if retained >= RETAINED_GENERATIONS || discard.contains(&generation) {
            continue;
        }
        let path = dir.join(&name);
        let Ok(bytes) = fs::read(&path) else {
            continue;
        };
        // Seal-verified parse only: deep (per-file hash) validation is
        // `open`'s job; retention just needs to know the manifest is
        // internally consistent enough to be worth keeping.
        let Ok(manifest) = parse_manifest(&path, generation, &bytes) else {
            continue;
        };
        retained += 1;
        keep_manifests.insert(name);
        referenced.insert(manifest.schema.file.clone());
        referenced.extend(manifest.shards.iter().map(|s| s.file.clone()));
    }
    let mut swept = Vec::new();
    for name in names {
        let delete = if name.ends_with(TMP_SUFFIX) {
            true
        } else if manifest_generation(&name).is_some() {
            !keep_manifests.contains(&name)
        } else if name.ends_with(&format!(".{SHARD_EXT}"))
            || name.ends_with(&format!(".{SCHEMA_EXT}"))
        {
            !referenced.contains(&name)
        } else {
            false
        };
        if delete && fs::remove_file(dir.join(&name)).is_ok() {
            swept.push(name);
        }
    }
    swept
}

// ---------------------------------------------------------------------
// Write / open
// ---------------------------------------------------------------------

impl CatalogSnapshot {
    /// Spill `store` into `dir` as a new manifest generation.
    ///
    /// Data files are written first (durably, content-addressed — shards
    /// already on disk from a previous generation are reused, so
    /// snapshotting an appended catalog costs O(new shards)); the
    /// manifest is then committed via temp file, fsync, atomic rename
    /// and directory fsync. A crash or error anywhere before the rename
    /// leaves the directory's previous restart point fully intact.
    /// After the commit, generations beyond the retention horizon (the
    /// new one plus one fallback) and the files only they referenced are
    /// swept.
    pub fn write(
        dir: impl AsRef<Path>,
        store: &ShardedStore,
    ) -> Result<SnapshotReceipt, PersistError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)
            .map_err(|e| PersistError::io("create snapshot directory", dir, e))?;
        let names = list_file_names(dir)?;
        let generation = manifest_files(&names)
            .first()
            .map(|(gen, _)| gen + 1)
            .unwrap_or(1);

        let mut bytes_written = 0u64;
        let mut total_bytes = 0u64;
        let schema_bytes = serialize_schema(store.schema());
        let (schema_entry, wrote) = write_data_file(dir, "schema", SCHEMA_EXT, &schema_bytes)?;
        total_bytes += schema_entry.len;
        if wrote {
            bytes_written += schema_entry.len;
        }

        let mut shards = Vec::with_capacity(store.shard_count());
        let mut shards_written = 0usize;
        let mut shards_reused = 0usize;
        for shard in store.shards() {
            let shard_bytes = serialize_shard(shard);
            let (mut entry, wrote) = write_data_file(dir, "shard", SHARD_EXT, &shard_bytes)?;
            entry.records = shard.len() as u64;
            total_bytes += entry.len;
            if wrote {
                bytes_written += entry.len;
                shards_written += 1;
            } else {
                shards_reused += 1;
            }
            shards.push(entry);
        }

        let manifest = Manifest {
            generation,
            schema: schema_entry,
            shards,
        };
        let text = render_manifest(&manifest);
        let name = manifest_name(generation);
        let manifest_path = dir.join(&name);
        let tmp_path = dir.join(format!("{name}{TMP_SUFFIX}"));
        write_file_sync(&tmp_path, text.as_bytes())?;
        // Models a crash (or error) at the commit point itself: the temp
        // manifest exists but was never renamed, so the snapshot did NOT
        // commit — the previous generation is still the restart point
        // and the temp file is swept on the next open.
        fail::fail_point!("persist::commit_manifest", |arg: Option<String>| {
            Err(PersistError::io(
                "commit manifest (injected)",
                &tmp_path,
                io::Error::other(arg.unwrap_or_default()),
            ))
        });
        fs::rename(&tmp_path, &manifest_path)
            .map_err(|e| PersistError::io("commit manifest", &manifest_path, e))?;
        sync_dir(dir)?;
        bytes_written += text.len() as u64;
        total_bytes += text.len() as u64;

        let swept = sweep(dir, &HashSet::new());
        Ok(SnapshotReceipt {
            generation,
            manifest: manifest_path,
            shards_written,
            shards_reused,
            bytes_written,
            total_bytes,
            swept,
        })
    }

    /// Restore a catalog from `dir`, trying manifest generations newest
    /// first and falling back past any generation that fails validation
    /// (truncated or bit-flipped manifest, missing / corrupt / malformed
    /// data file). Returns the restored catalog and a [`RecoveryReport`]
    /// saying which generation was loaded, what was discarded, and which
    /// orphaned files were swept.
    ///
    /// Never panics on corrupt input and never returns a half-loaded
    /// catalog: a generation is returned only after every checksum and
    /// every structural invariant of every referenced file has been
    /// verified. Errs with [`PersistError::NoSnapshot`] when the
    /// directory holds no manifest, [`PersistError::NoUsableGeneration`]
    /// when every generation is corrupt.
    pub fn open(dir: impl AsRef<Path>) -> Result<(ShardedStore, RecoveryReport), PersistError> {
        let dir = dir.as_ref();
        let names = match list_file_names(dir) {
            Ok(names) => names,
            Err(PersistError::Io { source, .. }) if source.kind() == io::ErrorKind::NotFound => {
                return Err(PersistError::NoSnapshot {
                    dir: dir.to_path_buf(),
                })
            }
            Err(e) => return Err(e),
        };
        let manifests = manifest_files(&names);
        if manifests.is_empty() {
            return Err(PersistError::NoSnapshot {
                dir: dir.to_path_buf(),
            });
        }

        let mut discarded: Vec<(String, String)> = Vec::new();
        let mut failed_generations: HashSet<u64> = HashSet::new();
        let mut loaded: Option<(u64, ShardedStore)> = None;
        for (generation, name) in &manifests {
            match Self::load_generation(dir, *generation, name) {
                Ok(store) => {
                    loaded = Some((*generation, store));
                    break;
                }
                Err(error) => {
                    discarded.push((name.clone(), error.to_string()));
                    failed_generations.insert(*generation);
                }
            }
        }
        let Some((generation, store)) = loaded else {
            let detail = discarded
                .iter()
                .map(|(name, reason)| format!("{name}: {reason}"))
                .collect::<Vec<_>>()
                .join("; ");
            return Err(PersistError::NoUsableGeneration {
                dir: dir.to_path_buf(),
                detail,
            });
        };

        let swept = sweep(dir, &failed_generations);
        let report = RecoveryReport {
            generation,
            recovered_from_fallback: !discarded.is_empty(),
            discarded,
            swept,
            shards: store.shard_count(),
            records: store.len(),
        };
        Ok((store, report))
    }

    /// Load one manifest generation end to end, verifying everything.
    fn load_generation(
        dir: &Path,
        generation: u64,
        name: &str,
    ) -> Result<ShardedStore, PersistError> {
        let manifest_path = dir.join(name);
        let bytes = fs::read(&manifest_path)
            .map_err(|e| PersistError::io("read manifest", &manifest_path, e))?;
        let manifest = parse_manifest(&manifest_path, generation, &bytes)?;

        let read_verified = |entry: &ManifestEntry| -> Result<(PathBuf, Vec<u8>), PersistError> {
            let path = dir.join(&entry.file);
            let bytes =
                fs::read(&path).map_err(|e| PersistError::io("read snapshot file", &path, e))?;
            if bytes.len() as u64 != entry.len {
                return Err(PersistError::corrupt(
                    &path,
                    format!(
                        "length mismatch (manifest says {}, file has {} — truncated?)",
                        entry.len,
                        bytes.len()
                    ),
                ));
            }
            let hash = xxh64(0, &bytes);
            if hash != entry.hash {
                return Err(PersistError::corrupt(
                    &path,
                    format!(
                        "content hash mismatch (manifest says {:016x}, file hashes to {hash:016x})",
                        entry.hash
                    ),
                ));
            }
            Ok((path, bytes))
        };

        let (schema_path, schema_bytes) = read_verified(&manifest.schema)?;
        let schema = Arc::new(decode_schema(&schema_path, &schema_bytes)?);

        // Identical shards share one file (content addressing); decode
        // each distinct file once and share the store Arc.
        let mut decoded: HashMap<String, Arc<RecordStore>> = HashMap::new();
        let mut shards = Vec::with_capacity(manifest.shards.len());
        for entry in &manifest.shards {
            let store = match decoded.get(&entry.file) {
                Some(store) => Arc::clone(store),
                None => {
                    let (path, bytes) = read_verified(entry)?;
                    let store = Arc::new(decode_shard(&path, &bytes, &schema)?);
                    if store.len() as u64 != entry.records {
                        return Err(PersistError::corrupt(
                            &path,
                            format!(
                                "record count mismatch (manifest says {}, shard holds {})",
                                entry.records,
                                store.len()
                            ),
                        ));
                    }
                    decoded.insert(entry.file.clone(), Arc::clone(&store));
                    store
                }
            };
            shards.push(store);
        }
        Ok(ShardedStore::from_persisted_shards(shards, schema))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    fn catalog() -> ShardedStore {
        let mut records = Vec::new();
        for i in 0..9 {
            let mut r = Record::new(Term::iri(format!("http://e.org/item/{i}")));
            r.add("http://e.org/v#pn", format!("PN-{i:04}"));
            if i % 2 == 0 {
                r.add("http://e.org/v#mfr", "Vishay");
            }
            records.push(r);
        }
        ShardedStore::from_records(&records, 3)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "classilink_persist_unit_{}_{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_bytes_round_trip() {
        let store = catalog();
        let schema = Arc::new(store.schema().clone());
        for shard in store.shards() {
            let bytes = serialize_shard(shard);
            let decoded = decode_shard(Path::new("x.clshard"), &bytes, &schema).expect("decode");
            assert_eq!(&decoded, shard.as_ref());
            // Serialization is deterministic — the content address is
            // stable across spills.
            assert_eq!(bytes, serialize_shard(&decoded));
        }
    }

    #[test]
    fn schema_bytes_round_trip() {
        let store = catalog();
        let bytes = serialize_schema(store.schema());
        let decoded = decode_schema(Path::new("x.clschema"), &bytes).expect("decode");
        assert_eq!(&decoded, store.schema());
    }

    #[test]
    fn every_truncation_of_a_shard_file_is_rejected_not_a_panic() {
        let store = catalog();
        let schema = Arc::new(store.schema().clone());
        let bytes = serialize_shard(store.shard(0));
        for len in 0..bytes.len() {
            let result = decode_shard(Path::new("t.clshard"), &bytes[..len], &schema);
            assert!(result.is_err(), "truncation to {len} bytes was accepted");
        }
    }

    #[test]
    fn every_single_bit_flip_in_a_shard_file_is_detected() {
        let store = catalog();
        let schema = Arc::new(store.schema().clone());
        let bytes = serialize_shard(store.shard(0));
        let original = decode_shard(Path::new("b.clshard"), &bytes, &schema).expect("clean");
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1;
            // Either the decoder rejects it (checksum / structure), or —
            // never — silently yields a different store. No panics.
            if let Ok(decoded) = decode_shard(Path::new("b.clshard"), &corrupt, &schema) {
                assert_eq!(
                    decoded, original,
                    "bit flip at byte {byte} silently changed the decoded store"
                );
                panic!("bit flip at byte {byte} was not detected");
            }
        }
    }

    #[test]
    fn manifest_round_trips_and_rejects_tampering() {
        let manifest = Manifest {
            generation: 7,
            schema: ManifestEntry {
                file: "schema-00ff.clschema".into(),
                len: 10,
                hash: 0xabcd,
                records: 0,
            },
            shards: vec![ManifestEntry {
                file: "shard-1234.clshard".into(),
                len: 99,
                hash: 0x1234,
                records: 5,
            }],
        };
        let text = render_manifest(&manifest);
        let parsed = parse_manifest(Path::new("MANIFEST-00000007"), 7, text.as_bytes()).unwrap();
        assert_eq!(parsed.generation, 7);
        assert_eq!(parsed.shards.len(), 1);
        assert_eq!(parsed.shards[0].records, 5);
        // Truncation drops the seal.
        for len in 0..text.len() {
            assert!(
                parse_manifest(Path::new("m"), 7, &text.as_bytes()[..len]).is_err(),
                "truncation to {len} accepted"
            );
        }
        // Any bit flip breaks the seal (or the seal line itself).
        for byte in 0..text.len() {
            let mut corrupt = text.clone().into_bytes();
            corrupt[byte] ^= 1;
            assert!(
                parse_manifest(Path::new("m"), 7, &corrupt).is_err(),
                "bit flip at {byte} accepted"
            );
        }
        // The file-name generation must agree.
        assert!(parse_manifest(Path::new("m"), 8, text.as_bytes()).is_err());
    }

    #[test]
    fn manifest_names_parse_and_order() {
        assert_eq!(manifest_generation("MANIFEST-00000012"), Some(12));
        assert_eq!(manifest_generation("MANIFEST-123456789"), Some(123456789));
        assert_eq!(manifest_generation("MANIFEST-"), None);
        assert_eq!(manifest_generation("MANIFEST-12.tmp"), None);
        assert_eq!(manifest_generation("shard-00.clshard"), None);
        assert_eq!(manifest_name(12), "MANIFEST-00000012");
    }

    #[test]
    fn unsafe_manifest_file_names_are_rejected() {
        for name in ["../evil", "a/b", "", ".hidden", "a\\b"] {
            assert!(!safe_file_name(name), "{name:?} accepted");
        }
        assert!(safe_file_name("shard-00ff.clshard"));
    }

    #[test]
    fn write_then_open_round_trips_in_place() {
        let dir = temp_dir("roundtrip");
        let store = catalog();
        let receipt = CatalogSnapshot::write(&dir, &store).expect("write");
        assert_eq!(receipt.generation, 1);
        assert_eq!(receipt.shards_written, store.shard_count());
        assert_eq!(receipt.shards_reused, 0);
        let (loaded, report) = CatalogSnapshot::open(&dir).expect("open");
        assert_eq!(loaded, store);
        assert_eq!(report.generation, 1);
        assert!(!report.recovered_from_fallback);
        assert_eq!(report.records, store.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_on_nothing_is_no_snapshot() {
        let dir = temp_dir("empty");
        assert!(matches!(
            CatalogSnapshot::open(&dir),
            Err(PersistError::NoSnapshot { .. })
        ));
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            CatalogSnapshot::open(&dir),
            Err(PersistError::NoSnapshot { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_display_the_failing_file_and_chain_sources() {
        use std::error::Error;
        let io_error = PersistError::io(
            "write file",
            Path::new("/snap/shard-00.clshard"),
            io::Error::other("disk full"),
        );
        let text = io_error.to_string();
        assert!(text.contains("shard-00.clshard"), "{text}");
        assert!(text.contains("disk full"), "{text}");
        assert!(io_error.source().is_some());
        let corrupt = PersistError::corrupt(Path::new("/snap/MANIFEST-00000001"), "seal mismatch");
        assert!(corrupt.to_string().contains("MANIFEST-00000001"));
        assert!(corrupt.source().is_none());
        // Equality ignores the io::Error allocation, not its identity.
        let again = PersistError::io(
            "write file",
            Path::new("/snap/shard-00.clshard"),
            io::Error::other("disk full"),
        );
        assert_eq!(io_error, again);
        assert_ne!(io_error, corrupt);
    }
}
