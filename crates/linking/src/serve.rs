//! Link-as-a-service: the epoch-swapped single-record probe path.
//!
//! The batch pipeline ([`crate::pipeline`]) answers "link these two
//! datasets"; a serving deployment asks the transposed question — "one
//! record just arrived, what does it link to in the catalog *right
//! now*?" — thousands of times per second, while the catalog itself is
//! periodically republished. [`Linker`] packages the batch machinery
//! for that shape without forking any of it:
//!
//! * **Pre-warmed epochs.** A published catalog is a [`CatalogEpoch`]:
//!   the [`ShardedStore`] with every blocker-side artifact built
//!   eagerly (key indexes, sort ladders, bigram postings and threshold
//!   layouts via [`Blocker::warm`]; token indexes when the comparator's
//!   kernels read them) and the comparator compiled once
//!   ([`RecordComparator::compile_schemas`]). No probe ever pays a
//!   first-call index build.
//! * **Atomic epoch swap.** Epochs are published as `Arc`s behind a
//!   [`RwLock`] ([`LinkerCatalog`]): [`Linker::swap`] builds and warms
//!   the new epoch *outside* the lock, then flips the pointer. In-flight
//!   probes keep the `Arc` of the epoch they started on, so a probe is
//!   never torn across a swap and a swap never waits for probes.
//! * **Incremental appends.** [`Linker::append`] publishes a successor
//!   epoch that `Arc`-shares the surviving shards of the current one —
//!   their warmed artifacts carry over — and builds/warms only the
//!   delta's appended shards, so growing the catalog costs O(delta)
//!   where [`Linker::swap`] costs O(catalog).
//! * **Fault-contained republish.** [`Linker::try_swap`] catches a panic
//!   anywhere in the epoch build/warm *before* the lock is touched: a
//!   failed republish returns [`LinkError::EpochBuildPanicked`], the old
//!   epoch keeps serving, and the sequence stays strictly monotonic. The
//!   lock itself recovers from poisoning (see [`LinkerCatalog`]), and
//!   [`Linker::try_probe_with`] contains probe-path panics the same way.
//! * **The batch code path, verbatim.** A probe wraps the record in a
//!   one-record external store (refilled **in place**, see
//!   [`RecordStore`] internals), streams the epoch's blockers into the
//!   caller's [`CandidateRuns`] sink, and scores through the *same*
//!   [`TaskQueue`](crate::pipeline) + `score_range` code the batch
//!   pipeline runs — which is what makes probe scores bit-identical to
//!   `run_sharded` by construction
//!   (`crates/linking/tests/probe_equivalence.rs` pins it).
//! * **Allocation-free warm probes.** All per-probe state lives in a
//!   caller-owned [`ProbeScratch`] (probe store, sink, similarity
//!   scratch, recycled [`LeftHoist`], result buffers); a warm
//!   [`Linker::probe_with`] performs zero heap allocations until links
//!   materialise their [`Term`](classilink_rdf::Term)s
//!   (`crates/linking/tests/zero_alloc.rs` pins it).

use crate::blocking::{Blocker, CandidateRuns};
use crate::comparator::{CompiledComparator, LeftHoist, RecordComparator};
use crate::error::{panic_payload, LinkError, LinkResult};
use crate::intern::{PropertyId, SchemaInterner};
use crate::persist::{CatalogSnapshot, RecoveryReport, SnapshotReceipt};
use crate::pipeline::{score_range, Link, ScoredPair, TaskQueue};
use crate::record::Record;
use crate::shard::{LocalShards, ShardedStore, ShardedStoreBuilder};
use crate::similarity::SimScratch;
use crate::store::RecordStore;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One published catalog generation: the sharded store with every
/// blocker/comparator artifact pre-built, plus the comparator compiled
/// against it. Immutable once published; probes hold the epoch they
/// started on via `Arc`, so replacing the catalog never invalidates a
/// probe in flight.
#[derive(Debug)]
pub struct CatalogEpoch<'a> {
    /// Monotonic publication number (the initial epoch is 1).
    sequence: u64,
    /// The catalog this epoch serves.
    store: ShardedStore,
    /// The comparator, compiled against (probe schema, catalog schema).
    compiled: CompiledComparator<'a>,
}

impl CatalogEpoch<'_> {
    /// Monotonic publication number of this epoch (the initial epoch,
    /// published by [`Linker::new`], is 1).
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// The catalog this epoch serves.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }
}

/// The atomically-swapped epoch slot of a [`Linker`].
///
/// Readers take the read lock only long enough to clone the `Arc`;
/// writers swap the pointer under the write lock after the (expensive)
/// epoch build has already happened outside it. Neither side ever holds
/// the lock across blocking or scoring work.
///
/// **Poison-free by construction.** The critical sections are a pointer
/// clone (`load`) and a sequence increment plus pointer assignment
/// (`publish`) — neither calls user code, so a panic *inside* the lock
/// is effectively impossible; everything fallible (the epoch build and
/// warm) runs before the lock is taken. Both sides still recover an
/// `RwLock` poisoned by some unforeseen unwind
/// (`unwrap_or_else(|e| e.into_inner())`): the slot always holds the
/// last fully published `Arc`, which is exactly what a reader wants and
/// exactly the predecessor a writer should increment from — so a failed
/// swap can never block or poison the probe path.
#[derive(Debug)]
pub struct LinkerCatalog<'a> {
    current: RwLock<Arc<CatalogEpoch<'a>>>,
}

impl<'a> LinkerCatalog<'a> {
    /// The currently-published epoch (an `Arc` clone; the caller keeps
    /// this one consistent epoch for as long as it holds the handle,
    /// regardless of concurrent swaps).
    pub fn load(&self) -> Arc<CatalogEpoch<'a>> {
        self.current
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Publish `epoch` as the next generation, assigning its sequence
    /// number under the write lock (so sequences are strictly
    /// monotonic even under concurrent swappers, and a *failed* swap —
    /// which never reaches `publish` — leaves no gap).
    fn publish(&self, mut epoch: CatalogEpoch<'a>) -> u64 {
        let mut current = self
            .current
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let sequence = current.sequence + 1;
        epoch.sequence = sequence;
        *current = Arc::new(epoch);
        sequence
    }
}

/// Distinguishes linkers, so a [`ProbeScratch`] can detect that it was
/// last used with a different linker (whose probe schema its reusable
/// probe store was built on) and rebuild instead of corrupting ids.
static NEXT_LINKER_TAG: AtomicU64 = AtomicU64::new(1);

/// A pre-warmed linking service handle: one blocker + comparator over an
/// atomically-swappable catalog, answering single-record
/// [`probe`](Linker::probe)s with exactly the links the batch pipeline
/// would report for that record.
///
/// The handle itself is `Sync`: any number of threads may probe (each
/// with its own [`ProbeScratch`], or through the thread-local
/// convenience [`probe`](Linker::probe)) while another thread
/// [`swap`](Linker::swap)s in rebuilt catalogs.
pub struct Linker<'a> {
    blocker: &'a (dyn Blocker + Sync),
    comparator: &'a RecordComparator,
    /// The shared schema probe stores intern into. Rule left-properties
    /// are interned at construction, **before** the first compile, and
    /// the interner is append-only — so the compiled left-side ids stay
    /// valid for every probe store and every epoch.
    probe_schema: SchemaInterner,
    /// This linker's identity (see [`NEXT_LINKER_TAG`]).
    tag: u64,
    catalog: LinkerCatalog<'a>,
}

impl<'a> Linker<'a> {
    /// Build a serving handle over `catalog`, eagerly warming every
    /// artifact a probe will read (blocker indexes via
    /// [`Blocker::warm`], token indexes when the comparator needs them)
    /// and publishing the result as epoch 1.
    pub fn new(
        blocker: &'a (dyn Blocker + Sync),
        comparator: &'a RecordComparator,
        catalog: ShardedStore,
    ) -> Self {
        let probe_schema = SchemaInterner::new();
        for rule in &comparator.rules {
            probe_schema.intern(&rule.left_property);
        }
        let epoch = build_epoch(blocker, comparator, &probe_schema, catalog, 1);
        Linker {
            blocker,
            comparator,
            probe_schema,
            tag: NEXT_LINKER_TAG.fetch_add(1, Ordering::Relaxed),
            catalog: LinkerCatalog {
                current: RwLock::new(Arc::new(epoch)),
            },
        }
    }

    /// The epoch slot (for callers that want to pin one epoch across
    /// several probes, or to read the published sequence number).
    pub fn catalog(&self) -> &LinkerCatalog<'a> {
        &self.catalog
    }

    /// Spill the currently-served catalog into `dir` as a new snapshot
    /// generation (see [`CatalogSnapshot::write`]). The manifest rename
    /// is the commit point: on `Err` nothing was committed and the
    /// previous generation — if any — is still the directory's restart
    /// point. Data files are content-addressed, so snapshotting after an
    /// [`append`](Self::append) spills only the appended shards
    /// (`shards_reused` in the receipt counts the carry-over).
    ///
    /// Serving is never interrupted: the spill reads one pinned epoch
    /// `Arc` while probes and swaps proceed normally.
    pub fn snapshot(&self, dir: impl AsRef<std::path::Path>) -> LinkResult<SnapshotReceipt> {
        let epoch = self.catalog.load();
        CatalogSnapshot::write(dir, epoch.store())
            .map_err(|source| LinkError::SnapshotFailed { source })
    }

    /// Restore a catalog from a snapshot directory and build a serving
    /// handle over it (epoch 1, fully warmed — see [`Linker::new`]).
    /// The loader verifies every checksum and falls back to the previous
    /// manifest generation when the newest is truncated or corrupt; the
    /// returned [`RecoveryReport`] says which generation was loaded and
    /// what was discarded or swept. Probes over the restored catalog are
    /// bit-identical to probes over the catalog that was snapshotted.
    ///
    /// Errs with [`LinkError::RestoreFailed`] when the directory holds
    /// no manifest or every generation fails validation — a half-loaded
    /// catalog is never served.
    pub fn open(
        dir: impl AsRef<std::path::Path>,
        blocker: &'a (dyn Blocker + Sync),
        comparator: &'a RecordComparator,
    ) -> LinkResult<(Self, RecoveryReport)> {
        let (store, report) =
            CatalogSnapshot::open(dir).map_err(|source| LinkError::RestoreFailed { source })?;
        Ok((Linker::new(blocker, comparator, store), report))
    }

    /// Replace the served catalog: build and warm the new epoch (the
    /// expensive part, outside any lock), then swap it in atomically.
    /// In-flight probes finish on the epoch they started with; probes
    /// beginning after `swap` returns see the new catalog. Returns the
    /// new epoch's sequence number.
    ///
    /// Panics on a contained fault — the fault-tolerant entry point is
    /// [`try_swap`](Self::try_swap).
    pub fn swap(&self, catalog: ShardedStore) -> u64 {
        self.try_swap(catalog).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`swap`](Self::swap): a panic while building or warming
    /// the new epoch is caught *before* the catalog lock is ever taken
    /// and returned as [`LinkError::EpochBuildPanicked`]. On `Err` the
    /// previous epoch keeps serving, nothing is partially published, and
    /// the sequence number does not advance — the next successful swap
    /// continues the strictly monotonic sequence.
    pub fn try_swap(&self, catalog: ShardedStore) -> LinkResult<u64> {
        // The sequence is provisional here; `publish` assigns the real
        // one under the write lock.
        let built = catch_unwind(AssertUnwindSafe(|| {
            try_build_epoch(
                self.blocker,
                self.comparator,
                &self.probe_schema,
                catalog,
                0,
            )
        }));
        match built {
            Ok(Ok(epoch)) => Ok(self.catalog.publish(epoch)),
            Ok(Err(error)) => Err(error),
            Err(payload) => Err(LinkError::EpochBuildPanicked {
                payload: panic_payload(payload),
            }),
        }
    }

    /// An empty shard builder whose schema continues the currently
    /// served catalog's (see [`ShardedStore::delta_builder`]) — fill it
    /// with the delta batch and publish with [`append`](Self::append).
    pub fn delta_builder(&self) -> ShardedStoreBuilder {
        self.catalog.load().store().delta_builder()
    }

    /// Grow the served catalog **incrementally**: columnarise `delta`
    /// (from [`delta_builder`](Self::delta_builder)) as new shards
    /// appended to the current epoch's store, and publish the successor
    /// epoch. Returns the new epoch's sequence number.
    ///
    /// Unlike [`swap`](Self::swap), which warms every shard of the
    /// replacement catalog, the successor epoch `Arc`-shares the
    /// surviving shards — their key indexes, sort ladders, bigram
    /// layouts and token indexes carry over already warm — and only the
    /// **appended** shards are built and warmed. Republishing therefore
    /// costs O(delta), not O(catalog). In-flight probes finish on the
    /// epoch they started with, exactly as for a swap.
    ///
    /// Concurrent appends are last-publish-wins over the same loaded
    /// base (like any load-build-publish update); serialise appends on
    /// one updater thread to make every delta durable.
    ///
    /// Panics on a contained fault — the fault-tolerant entry point is
    /// [`try_append`](Self::try_append).
    pub fn append(&self, delta: ShardedStoreBuilder) -> u64 {
        self.try_append(delta).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`append`](Self::append): a panic (or injected fault)
    /// while columnarising the delta shards or warming their artifacts
    /// is caught *before* the catalog lock is ever taken and returned as
    /// a [`LinkError`]. On `Err` the previous epoch keeps serving —
    /// nothing is partially appended, and the sequence does not advance.
    pub fn try_append(&self, delta: ShardedStoreBuilder) -> LinkResult<u64> {
        let built = catch_unwind(AssertUnwindSafe(|| {
            // Models a fault at the append boundary, before the delta
            // columnarises or the base epoch is even loaded.
            fail::fail_point!("serve::append", |arg: Option<String>| Err(
                LinkError::injected("serve::append", arg)
            ));
            let current = self.catalog.load();
            let base = current.store();
            let first_new = base.shard_count();
            let appended = base.try_append_shards(delta)?;
            let compiled = self
                .comparator
                .compile_schemas(&self.probe_schema.snapshot(), appended.schema());
            if compiled.uses_token_index() {
                // Old shards' token indexes are cached in the shared
                // `Arc`s; only the appended shards build here.
                for shard in &appended.shards()[first_new..] {
                    shard.token_index();
                }
            }
            fail::fail_point!("serve::warm_append");
            // Warm each appended shard as a single-shard view: every
            // built-in warm only reads the schema (each shard's own
            // interner) and builds per-shard indexes, so this is
            // equivalent to warming the whole catalog — minus the
            // old-shard probes, which are already warm.
            for s in first_new..appended.shard_count() {
                self.blocker.warm(LocalShards::single(appended.shard(s)));
            }
            Ok(CatalogEpoch {
                sequence: 0, // provisional; `publish` assigns the real one
                store: appended,
                compiled,
            })
        }));
        match built {
            Ok(Ok(epoch)) => Ok(self.catalog.publish(epoch)),
            Ok(Err(error)) => Err(error),
            Err(payload) => Err(LinkError::EpochBuildPanicked {
                payload: panic_payload(payload),
            }),
        }
    }

    /// Probe with a caller-owned scratch — the allocation-free path: a
    /// **warm** call (same scratch, same linker, no new probe-side
    /// property) performs zero heap allocations up to the `Term` clones
    /// of the links it returns. The returned [`ProbeHits`] borrows the
    /// scratch and is valid until its next use.
    ///
    /// Panics on a contained fault — the fault-tolerant entry point is
    /// [`try_probe_with`](Self::try_probe_with).
    pub fn probe_with<'s>(&self, record: &Record, scratch: &'s mut ProbeScratch) -> &'s ProbeHits {
        self.try_probe_with(record, scratch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`probe_with`](Self::probe_with): a panic anywhere in
    /// the probe path (refill, blocking, scoring, materialisation) is
    /// caught and returned as [`LinkError::ProbePanicked`]. The scratch
    /// stays usable — every stage re-initialises its buffers at the
    /// start of the next call — so a clean retry over the same scratch
    /// is bit-identical to a never-faulted probe.
    pub fn try_probe_with<'s>(
        &self,
        record: &Record,
        scratch: &'s mut ProbeScratch,
    ) -> LinkResult<&'s ProbeHits> {
        match catch_unwind(AssertUnwindSafe(|| self.probe_into(record, scratch))) {
            Ok(()) => Ok(&scratch.hits),
            Err(payload) => Err(LinkError::ProbePanicked {
                payload: panic_payload(payload),
            }),
        }
    }

    /// The probe body (the probe failure domain), writing the result
    /// into `scratch.hits`.
    fn probe_into(&self, record: &Record, scratch: &mut ProbeScratch) {
        if scratch.tag != self.tag {
            // First use with this linker (or the scratch migrated from
            // another): the probe store must intern into *this*
            // linker's schema.
            scratch.store = RecordStore::builder_with_schema(self.probe_schema.clone()).build();
            scratch.sorted_properties.clear();
            scratch.tag = self.tag;
        }
        scratch
            .store
            .refill_single(&self.probe_schema, record, &mut scratch.sorted_properties);
        // One consistent epoch end-to-end: blocking, scoring and link
        // materialisation all read this Arc, regardless of swaps.
        let epoch = self.catalog.load();
        let store = epoch.store();
        self.blocker
            .stream_candidates(&scratch.store, store.into(), &mut scratch.runs);
        scratch.matches.clear();
        scratch.possible.clear();
        let mut hoist = std::mem::take(&mut scratch.hoist).recycle();
        for shard in 0..store.shard_count() {
            // The batch scheduler's queue + range scorer, over the full
            // range of each shard's streamed blocks — the same
            // validation, decoding, hoisting and scoring code the batch
            // pipeline runs, hence bit-identical scores.
            let queue = TaskQueue::with_prefix(
                store.shard(shard),
                store.offset(shard),
                &scratch.runs,
                shard,
                scratch.store.len(),
                std::mem::take(&mut scratch.prefix),
            );
            score_range(
                &epoch.compiled,
                &queue,
                0..queue.total(),
                &scratch.store,
                &mut scratch.sim,
                &mut hoist,
                &mut scratch.matches,
                &mut scratch.possible,
            );
            scratch.prefix = queue.into_prefix();
        }
        scratch.hoist = hoist.recycle();
        // Shards stream in order but a shard's blocks follow emission
        // order; global-id sorting makes the output canonical (the
        // batch pipeline sorts the same way).
        scratch.matches.sort_unstable_by_key(|pair| pair.1);
        scratch.possible.sort_unstable_by_key(|pair| pair.1);
        scratch.hits.epoch = epoch.sequence;
        scratch.hits.comparisons = scratch.runs.total();
        materialise_into(
            &mut scratch.hits.matches,
            &scratch.matches,
            &scratch.store,
            store,
        );
        materialise_into(
            &mut scratch.hits.possible,
            &scratch.possible,
            &scratch.store,
            store,
        );
    }

    /// Probe with a per-thread scratch: the links of `record` against
    /// the current epoch, sorted by global catalog id. Convenience over
    /// [`probe_with`](Self::probe_with) (which also exposes possible
    /// matches, the comparison count and the serving epoch).
    pub fn probe(&self, record: &Record) -> Vec<Link> {
        thread_local! {
            static SCRATCH: RefCell<ProbeScratch> = RefCell::new(ProbeScratch::new());
        }
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            self.probe_with(record, &mut scratch).matches.clone()
        })
    }
}

/// Compile, warm and assemble one epoch (shared by [`Linker::new`] and
/// [`Linker::swap`]; always outside the catalog lock). Panics on a
/// contained fault; [`Linker::try_swap`] goes through
/// [`try_build_epoch`] directly.
fn build_epoch<'a>(
    blocker: &(dyn Blocker + Sync),
    comparator: &'a RecordComparator,
    probe_schema: &SchemaInterner,
    store: ShardedStore,
    sequence: u64,
) -> CatalogEpoch<'a> {
    try_build_epoch(blocker, comparator, probe_schema, store, sequence)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// The epoch-build failure domain body: compile the comparator, build
/// every token index the kernels read, warm the blocker's artifacts.
/// The `serve::build_epoch` failpoint can inject a structured error
/// (`return` action) or a panic at the domain entry; `serve::warm`
/// covers a fault inside the blocker's own warm-up.
fn try_build_epoch<'a>(
    blocker: &(dyn Blocker + Sync),
    comparator: &'a RecordComparator,
    probe_schema: &SchemaInterner,
    store: ShardedStore,
    sequence: u64,
) -> LinkResult<CatalogEpoch<'a>> {
    fail::fail_point!("serve::build_epoch", |arg: Option<String>| Err(
        LinkError::injected("serve::build_epoch", arg)
    ));
    let compiled = comparator.compile_schemas(&probe_schema.snapshot(), store.schema());
    if compiled.uses_token_index() {
        for shard in store.shards() {
            shard.token_index();
        }
    }
    fail::fail_point!("serve::warm");
    blocker.warm((&store).into());
    Ok(CatalogEpoch {
        sequence,
        store,
        compiled,
    })
}

/// The result of one probe, owned by the [`ProbeScratch`] it was
/// produced into (buffers are reused across probes).
#[derive(Debug, Default)]
pub struct ProbeHits {
    /// Links decided as matches, sorted by global catalog id.
    pub matches: Vec<Link>,
    /// Links decided as possible matches, sorted by global catalog id.
    pub possible: Vec<Link>,
    /// Candidate pairs scored for this probe.
    pub comparisons: u64,
    /// Sequence number of the [`CatalogEpoch`] that served the probe.
    pub epoch: u64,
}

/// A caller-owned probe workspace: the one-record probe store, the
/// candidate sink, the similarity scratch, the recycled left hoist and
/// the result buffers. Every buffer retains its capacity across probes,
/// which is what makes warm [`Linker::probe_with`] calls
/// allocation-free. One scratch serves one thread; make one per worker.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    /// The linker this scratch was last used with (0 = never used).
    tag: u64,
    /// The reusable one-record external store.
    store: RecordStore,
    /// IRI-sorted probe-schema ids (the refill scratch).
    sorted_properties: Vec<PropertyId>,
    /// The streaming blocking sink.
    runs: CandidateRuns,
    /// Similarity kernel scratch.
    sim: SimScratch,
    /// The recycled left-side hoist (parked with an erased lifetime
    /// between probes; see [`LeftHoist::recycle`]).
    hoist: LeftHoist<'static>,
    /// The task queues' comparison-count prefix buffer (recovered from
    /// each shard's queue after scoring; see [`TaskQueue::with_prefix`]).
    prefix: Vec<u64>,
    /// Scored matches as `(0, global id, score)`, pre-materialisation.
    matches: Vec<ScoredPair>,
    /// Scored possible matches, pre-materialisation.
    possible: Vec<ScoredPair>,
    /// The materialised result the caller reads.
    hits: ProbeHits,
}

impl ProbeScratch {
    /// A fresh scratch; the first probe sizes every buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Clear-and-refill link materialisation: `out` keeps its capacity, so
/// a warm probe's only allocations are the `Term` clones of each link.
fn materialise_into(
    out: &mut Vec<Link>,
    pairs: &[ScoredPair],
    probe: &RecordStore,
    catalog: &ShardedStore,
) {
    out.clear();
    out.extend(pairs.iter().map(|&(e, l, score)| Link {
        external: probe.id(e).clone(),
        local: catalog.id(l).clone(),
        score,
    }));
}
