//! Streaming ingestion: subject-grouping columnarisation from a triple
//! stream (or a parsed graph) straight into record-store builders.
//!
//! The batch front door used to be `parse → Graph → from_graph`, which
//! holds the whole document *and* the store in memory at once. This
//! module inverts that: [`FeedIngest`] drives the incremental parsers of
//! `classilink-rdf` ([`NTriplesStreamer`] / [`TurtleStreamer`]) chunk by
//! chunk, groups the emitted triples by subject with a [`SubjectGrouper`],
//! and pushes each completed record into a [`ShardedStoreBuilder`] —
//! opening a fresh shard every `records_per_shard` records, so a
//! multi-GB feed columnarises into parallel shards while the transient
//! state is bounded by one statement plus one record.
//!
//! The same grouping adapter is the *only* graph-walk columnariser:
//! [`RecordStore::from_graph`](crate::store::RecordStore::from_graph),
//! [`ShardedStore::from_graph*`](crate::shard::ShardedStore::from_graph)
//! and the `push_subject`/`push_graph` builder helpers are thin wrappers
//! over [`SubjectGrouper::push_subject`] / [`columnarise_subjects`].
//!
//! ```
//! use classilink_linking::ingest::FeedIngest;
//! use classilink_linking::intern::SchemaInterner;
//!
//! let mut ingest = FeedIngest::ntriples(SchemaInterner::new(), 2);
//! ingest
//!     .feed(b"<http://e.org/a> <http://e.org/v#pn> \"X-1\" .\n<http://e.org")
//!     .unwrap();
//! ingest
//!     .feed(b"/b> <http://e.org/v#pn> \"X-2\" .\n")
//!     .unwrap();
//! let store = ingest.finish();
//! assert_eq!(store.len(), 2);
//! ```

use crate::error::{panic_payload, LinkError, LinkResult};
use crate::intern::SchemaInterner;
use crate::shard::{ShardedStore, ShardedStoreBuilder};
use crate::store::RecordStoreBuilder;
use classilink_rdf::{Graph, NTriplesStreamer, Term, Triple, TurtleStreamer};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A sink accepting completed (subject-grouped) records — implemented by
/// both store builders, so one grouping adapter feeds the single-store
/// and the sharded columnarisation paths.
pub trait RecordSink {
    /// Accept one record with its `(property IRI, value)` facts; returns
    /// the record's index in the sink.
    fn accept_record(&mut self, id: Term, facts: &[(String, String)]) -> usize;
}

impl RecordSink for RecordStoreBuilder {
    fn accept_record(&mut self, id: Term, facts: &[(String, String)]) -> usize {
        self.push_record(id, || facts.iter().map(|(p, v)| (p.as_str(), v.as_str())))
    }
}

impl RecordSink for ShardedStoreBuilder {
    fn accept_record(&mut self, id: Term, facts: &[(String, String)]) -> usize {
        self.push_record(id, || facts.iter().map(|(p, v)| (p.as_str(), v.as_str())))
    }
}

/// Groups a subject-contiguous fact stream into records.
///
/// Facts are buffered until the subject changes (or
/// [`flush`](SubjectGrouper::flush) is called), then emitted as one record
/// into a
/// [`RecordSink`]. The fact buffers are recycled across records, so
/// steady-state grouping allocates only when a record exceeds every
/// previous record's fact count or value lengths.
///
/// The grouper assumes the feed is **subject-grouped** (all triples of a
/// subject arrive contiguously — the natural shape of exported dumps and
/// of graph walks). A subject that re-appears later starts a *second*
/// record; dedup is the feeder's job.
#[derive(Debug, Default)]
pub struct SubjectGrouper {
    subject: Option<Term>,
    /// `(property, value)` buffers; the first `fact_count` entries are
    /// live, the rest are retained allocations from earlier records.
    facts: Vec<(String, String)>,
    fact_count: usize,
    records: usize,
}

impl SubjectGrouper {
    /// A grouper with no pending record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a record for `subject`, flushing the previous record into
    /// `sink` if `subject` differs from the pending one. Returns the
    /// flushed record's sink index, if a record was completed.
    pub fn begin_subject<S: RecordSink>(&mut self, sink: &mut S, subject: &Term) -> Option<usize> {
        if self.subject.as_ref() == Some(subject) {
            return None;
        }
        let flushed = self.flush(sink);
        self.subject = Some(subject.clone());
        flushed
    }

    /// Feed one fact of `subject` (beginning its record if needed).
    /// Returns the index of the record flushed by a subject change.
    pub fn push_fact<S: RecordSink>(
        &mut self,
        sink: &mut S,
        subject: &Term,
        property: &str,
        value: &str,
    ) -> Option<usize> {
        let flushed = self.begin_subject(sink, subject);
        self.buffer_fact(property, value);
        flushed
    }

    /// Feed one parsed triple: the subject begins/continues its record,
    /// and IRI-predicate + literal-object triples contribute a fact
    /// (other triples only mark the subject, mirroring
    /// [`Record::from_graph`](crate::record::Record::from_graph)).
    pub fn push_triple<S: RecordSink>(&mut self, sink: &mut S, triple: &Triple) -> Option<usize> {
        let flushed = self.begin_subject(sink, &triple.subject);
        if let (Some(p), Some(lit)) = (triple.predicate.as_iri(), triple.object.as_literal()) {
            self.buffer_fact(p, &lit.value);
        }
        flushed
    }

    /// Begin `subject` and buffer every literal-valued fact `graph` holds
    /// for it — the graph-walk columnarisation step shared by every
    /// `from_graph`/`push_subject` wrapper.
    pub fn push_subject<S: RecordSink>(
        &mut self,
        sink: &mut S,
        graph: &Graph,
        subject: &Term,
    ) -> Option<usize> {
        let flushed = self.begin_subject(sink, subject);
        for triple in graph.triples_matching(Some(subject), None, None) {
            if let (Some(p), Some(lit)) = (triple.predicate.as_iri(), triple.object.as_literal()) {
                self.buffer_fact(p, &lit.value);
            }
        }
        flushed
    }

    fn buffer_fact(&mut self, property: &str, value: &str) {
        if self.fact_count == self.facts.len() {
            self.facts.push((String::new(), String::new()));
        }
        let (p, v) = &mut self.facts[self.fact_count];
        p.clear();
        p.push_str(property);
        v.clear();
        v.push_str(value);
        self.fact_count += 1;
    }

    /// Emit the pending record (if any) into `sink`; returns its index.
    pub fn flush<S: RecordSink>(&mut self, sink: &mut S) -> Option<usize> {
        let subject = self.subject.take()?;
        let index = sink.accept_record(subject, &self.facts[..self.fact_count]);
        self.fact_count = 0;
        self.records += 1;
        Some(index)
    }

    /// Number of records emitted so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// The subject of the buffered (not yet emitted) record, if any.
    pub fn pending_subject(&self) -> Option<&Term> {
        self.subject.as_ref()
    }
}

/// Columnarise the given graph subjects (in order) into `sink`, one
/// record per subject, through the grouping adapter.
pub fn columnarise_subjects<S: RecordSink>(graph: &Graph, subjects: &[Term], sink: &mut S) {
    let mut grouper = SubjectGrouper::new();
    for subject in subjects {
        grouper.push_subject(sink, graph, subject);
    }
    grouper.flush(sink);
}

/// Columnarise every subject of `graph` into `sink`, in subject order
/// (the order [`Graph::subjects`] yields — what `from_graph` has always
/// used, so global ids are unchanged).
pub fn columnarise_graph<S: RecordSink>(graph: &Graph, sink: &mut S) {
    columnarise_subjects(graph, &graph.subjects(), sink);
}

/// Which syntax a byte feed is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedFormat {
    /// Line-oriented N-Triples.
    NTriples,
    /// The workspace's Turtle subset.
    Turtle,
}

#[derive(Debug)]
enum FeedStreamer {
    NTriples(NTriplesStreamer),
    Turtle(TurtleStreamer),
}

/// Streaming feed → sharded columnar store, with bounded memory.
///
/// Feed byte chunks ([`feed`](Self::feed)); each chunk's complete
/// statements are parsed, subject-grouped and pushed into shard
/// builders immediately, with a fresh shard opened every
/// `records_per_shard` records. [`finish`](Self::finish) flushes the
/// tail and freezes the shards (parallel columnarisation). At no point
/// does a full-document `Graph` — or any other input-sized intermediate
/// — exist; transient state is one incomplete statement plus one
/// record's facts plus the store under construction.
///
/// A parse error or an ingest-site panic poisons the ingest: the error
/// is reported, further feeding is rejected, and `finish` refuses to
/// publish a store built from a partial feed — a faulted feed therefore
/// never half-publishes a shard.
#[derive(Debug)]
pub struct FeedIngest {
    streamer: FeedStreamer,
    grouper: SubjectGrouper,
    builder: ShardedStoreBuilder,
    records_per_shard: usize,
    poisoned: bool,
}

impl FeedIngest {
    /// An ingest for `format` interning into `schema`, rotating shards
    /// every `records_per_shard` records (clamped to ≥ 1).
    pub fn new(format: FeedFormat, schema: SchemaInterner, records_per_shard: usize) -> Self {
        let streamer = match format {
            FeedFormat::NTriples => FeedStreamer::NTriples(NTriplesStreamer::new()),
            FeedFormat::Turtle => FeedStreamer::Turtle(TurtleStreamer::new()),
        };
        FeedIngest {
            streamer,
            grouper: SubjectGrouper::new(),
            builder: ShardedStore::builder_with_schema(schema),
            records_per_shard: records_per_shard.max(1),
            poisoned: false,
        }
    }

    /// An N-Triples ingest (see [`new`](Self::new)).
    pub fn ntriples(schema: SchemaInterner, records_per_shard: usize) -> Self {
        Self::new(FeedFormat::NTriples, schema, records_per_shard)
    }

    /// A Turtle ingest (see [`new`](Self::new)).
    pub fn turtle(schema: SchemaInterner, records_per_shard: usize) -> Self {
        Self::new(FeedFormat::Turtle, schema, records_per_shard)
    }

    /// Feed one chunk of input bytes, draining every statement it
    /// completes into shard columnarisation. Chunks may split the input
    /// anywhere (mid-statement, mid-UTF-8).
    pub fn feed(&mut self, chunk: &[u8]) -> LinkResult<()> {
        if self.poisoned {
            return Err(LinkError::IngestFailed {
                payload: "ingest already failed; feed rejected".to_string(),
            });
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Models a fault at the chunk boundary — the unit of work the
            // ingest either completes (every statement the chunk closed
            // is columnarised) or abandons as a whole (poisoned, nothing
            // published).
            fail::fail_point!("ingest::chunk", |arg: Option<String>| {
                Err(LinkError::injected("ingest::chunk", arg))
            });
            match &mut self.streamer {
                FeedStreamer::NTriples(s) => s.feed(chunk),
                FeedStreamer::Turtle(s) => s.feed(chunk),
            }
            self.drain_parsed()
        }));
        self.settle(outcome)
    }

    /// Drain the triples parsed so far into the grouper/builders.
    fn drain_parsed(&mut self) -> LinkResult<()> {
        loop {
            let parsed = match &mut self.streamer {
                FeedStreamer::NTriples(s) => s.next_triple(),
                FeedStreamer::Turtle(s) => s.next_triple(),
            };
            let triple = match parsed {
                Some(Ok(triple)) => triple,
                Some(Err(error)) => {
                    return Err(LinkError::IngestFailed {
                        payload: error.to_string(),
                    })
                }
                None => return Ok(()),
            };
            if self
                .grouper
                .push_triple(&mut self.builder, &triple)
                .is_some()
                && self.builder.len().is_multiple_of(self.records_per_shard)
            {
                // The record that just completed filled the current
                // shard; the *next* record starts a new one.
                self.builder.begin_shard();
            }
        }
    }

    /// Map a `catch_unwind` outcome to the ingest's fault contract:
    /// panics and errors both poison the ingest.
    fn settle(&mut self, outcome: std::thread::Result<LinkResult<()>>) -> LinkResult<()> {
        let result = outcome.unwrap_or_else(|payload| {
            Err(LinkError::IngestFailed {
                payload: panic_payload(payload),
            })
        });
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }

    /// Records columnarised so far (completed subjects only).
    pub fn records(&self) -> usize {
        self.builder.len()
    }

    /// Bytes buffered inside the incremental parser (bounded by one
    /// statement plus the last chunk).
    pub fn buffered_bytes(&self) -> usize {
        match &self.streamer {
            FeedStreamer::NTriples(s) => s.buffered_bytes(),
            FeedStreamer::Turtle(s) => s.buffered_bytes(),
        }
    }

    /// Flush the tail (final statement and pending record) and hand back
    /// the shard builder — the delta path, where the caller appends the
    /// new shards to an existing catalog via
    /// [`ShardedStore::append_shards`](crate::shard::ShardedStore::append_shards).
    pub fn into_builder(mut self) -> LinkResult<ShardedStoreBuilder> {
        if self.poisoned {
            return Err(LinkError::IngestFailed {
                payload: "ingest already failed; nothing to publish".to_string(),
            });
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match &mut self.streamer {
                FeedStreamer::NTriples(s) => s.finish(),
                FeedStreamer::Turtle(s) => s.finish(),
            }
            self.drain_parsed()?;
            self.grouper.flush(&mut self.builder);
            Ok(())
        }));
        self.settle(outcome)?;
        Ok(self.builder)
    }

    /// Flush the tail and freeze the shards (parallel columnarisation);
    /// see [`into_builder`](Self::into_builder) for the delta path.
    pub fn try_finish(self) -> LinkResult<ShardedStore> {
        self.into_builder()?.try_build()
    }

    /// Panicking [`try_finish`](Self::try_finish).
    pub fn finish(self) -> ShardedStore {
        self.try_finish().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::store::RecordStore;

    const PN: &str = "http://e.org/v#pn";
    const MFR: &str = "http://e.org/v#mfr";

    fn feed_doc(n: usize) -> String {
        let mut doc = String::new();
        for i in 0..n {
            doc.push_str(&format!("<http://e.org/item/{i}> <{PN}> \"PN-{i:04}\" .\n"));
            if i % 2 == 0 {
                doc.push_str(&format!("<http://e.org/item/{i}> <{MFR}> \"Vishay\" .\n"));
            }
        }
        doc
    }

    #[test]
    fn feed_matches_batch_graph_path() {
        let doc = feed_doc(10);
        let graph = classilink_rdf::ntriples::parse(&doc).unwrap();
        let batch = ShardedStore::from_graph(&graph, 4);

        let mut ingest = FeedIngest::ntriples(SchemaInterner::new(), 3);
        // Awkward chunk size on purpose: boundaries land mid-line.
        for chunk in doc.as_bytes().chunks(7) {
            ingest.feed(chunk).unwrap();
        }
        let streamed = ingest.finish();
        assert_eq!(streamed.len(), batch.len());
        assert_eq!(streamed.shard_count(), 4); // ceil(10 / 3)
                                               // Same records, same global order (the feed is subject-grouped
                                               // in first-appearance order, which is the graph's subject order).
        for i in 0..batch.len() {
            assert_eq!(streamed.id(i), batch.id(i));
        }
        assert_eq!(streamed.to_store(), batch.to_store());
    }

    #[test]
    fn shards_rotate_on_record_boundaries() {
        let doc = feed_doc(7);
        let mut ingest = FeedIngest::ntriples(SchemaInterner::new(), 2);
        ingest.feed(doc.as_bytes()).unwrap();
        let store = ingest.finish();
        let sizes: Vec<usize> = store.shards().iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![2, 2, 2, 1]);
    }

    #[test]
    fn buffered_bytes_stay_bounded_across_a_long_feed() {
        let mut ingest = FeedIngest::ntriples(SchemaInterner::new(), 64);
        let line_len = feed_doc(1).len();
        for i in 0..500 {
            let line = format!("<http://e.org/item/{i}> <{PN}> \"PN-{i:04}\" .\n");
            ingest.feed(line.as_bytes()).unwrap();
            assert!(ingest.buffered_bytes() < 2 * line_len);
        }
        assert_eq!(ingest.finish().len(), 500);
    }

    #[test]
    fn parse_errors_poison_the_ingest() {
        let mut ingest = FeedIngest::ntriples(SchemaInterner::new(), 8);
        ingest
            .feed(b"<http://e.org/a> <http://e.org/v#pn> \"X\" .\n")
            .unwrap();
        let err = ingest.feed(b"not a triple\n").unwrap_err();
        assert!(matches!(err, LinkError::IngestFailed { .. }), "{err}");
        // Poisoned: nothing publishes, even the record parsed before the
        // fault.
        assert!(ingest
            .feed(b"<http://e.org/b> <http://e.org/v#pn> \"Y\" .\n")
            .is_err());
        assert!(ingest.try_finish().is_err());
    }

    #[test]
    fn turtle_feed_carries_prefixes_across_chunks() {
        let doc = "@prefix ex: <http://e.org/v#> .\n\
             <http://e.org/a> ex:pn \"X-1\" ; ex:mfr \"Vishay\" .\n\
             <http://e.org/b> ex:pn \"X-2\" .\n"
            .to_string();
        let mut ingest = FeedIngest::turtle(SchemaInterner::new(), 8);
        for chunk in doc.as_bytes().chunks(11) {
            ingest.feed(chunk).unwrap();
        }
        let store = ingest.finish();
        assert_eq!(store.len(), 2);
        let pn = store.property(PN).unwrap();
        assert_eq!(store.shard(0).first(0, pn), Some("X-1"));
    }

    #[test]
    fn grouper_reuses_fact_buffers_and_counts_records() {
        let mut builder = RecordStore::builder();
        let mut grouper = SubjectGrouper::new();
        let a = Term::iri("http://e.org/a");
        let b = Term::iri("http://e.org/b");
        assert_eq!(grouper.push_fact(&mut builder, &a, PN, "X-1"), None);
        assert_eq!(grouper.pending_subject(), Some(&a));
        assert_eq!(grouper.push_fact(&mut builder, &a, MFR, "Vishay"), None);
        // Subject change flushes the previous record.
        assert_eq!(grouper.push_fact(&mut builder, &b, PN, "X-2"), Some(0));
        assert_eq!(grouper.flush(&mut builder), Some(1));
        assert_eq!(grouper.records(), 2);
        assert_eq!(grouper.flush(&mut builder), None);
        let store = builder.build();
        assert_eq!(store.len(), 2);
        let mut expected = Record::new(a);
        expected.add(PN, "X-1").add(MFR, "Vishay");
        assert_eq!(store.record(0), expected);
    }

    #[test]
    fn columnarise_graph_matches_from_graph() {
        let graph = classilink_rdf::ntriples::parse(&feed_doc(6)).unwrap();
        let mut builder = RecordStore::builder();
        columnarise_graph(&graph, &mut builder);
        assert_eq!(builder.build(), RecordStore::from_graph(&graph));
    }
}
