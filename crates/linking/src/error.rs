//! Structured errors for the fallible linking entry points.
//!
//! Every long-running phase of the batch pipeline and the serving layer is
//! a *failure domain*: a panic inside it is caught at the domain boundary
//! ([`std::panic::catch_unwind`]) and surfaces as a [`LinkError`] variant
//! naming the domain, instead of aborting the process or poisoning shared
//! state. See the "Failure domains & containment" section of
//! ARCHITECTURE.md for the domain map.

use crate::persist::PersistError;
use std::any::Any;
use std::fmt;

/// Convenience alias for results of the fallible `try_*` entry points.
pub type LinkResult<T> = Result<T, LinkError>;

/// A contained failure from one of the linking failure domains.
///
/// Each variant carries the stringified panic payload (or injected
/// message) plus enough context to tell *which* domain failed — the
/// shared stores, scratch buffers and caches the failed call touched are
/// all self-healing, so a clean retry over the same state is
/// bit-identical to a never-faulted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The blocking phase (`stream_candidates`) panicked.
    BlockingPanicked {
        /// [`Blocker::name`](crate::blocking::Blocker::name) of the
        /// strategy that failed.
        blocker: String,
        /// Stringified panic payload.
        payload: String,
    },
    /// A comparison worker panicked mid-scoring. The surviving workers
    /// drained the remaining blocks before the run was abandoned, so the
    /// error reports how far the batch got.
    WorkerPanicked {
        /// Index of the first worker that panicked.
        worker: usize,
        /// Stringified panic payload.
        payload: String,
        /// Workers that finished their claim loop cleanly.
        survivors: usize,
        /// Links (matches + possibles) scored by the surviving workers.
        partial_links: usize,
    },
    /// Parallel shard columnarisation panicked while building one shard.
    ShardBuildPanicked {
        /// Index of the shard whose columnarisation failed.
        shard: usize,
        /// Stringified panic payload.
        payload: String,
    },
    /// Building or warming the next catalog epoch inside
    /// [`Linker::try_swap`](crate::serve::Linker::try_swap) panicked; the
    /// previous epoch is still serving and the sequence did not advance.
    EpochBuildPanicked {
        /// Stringified panic payload.
        payload: String,
    },
    /// A probe panicked; the probe scratch re-initialises itself on the
    /// next call, so the handle stays serviceable.
    ProbePanicked {
        /// Stringified panic payload.
        payload: String,
    },
    /// A streaming ingest ([`FeedIngest`](crate::ingest::FeedIngest))
    /// failed — a malformed statement in the feed, or a panic while a
    /// chunk was being parsed and columnarised. The ingest is poisoned:
    /// it refuses further chunks and never publishes a store built from
    /// the partial feed.
    IngestFailed {
        /// The parse error, or the stringified panic payload.
        payload: String,
    },
    /// Spilling a catalog snapshot
    /// ([`Linker::snapshot`](crate::serve::Linker::snapshot)) failed.
    /// The manifest rename is the commit point and it was never reached
    /// (or never became durable), so the previous manifest generation —
    /// if any — is still the directory's restart point.
    SnapshotFailed {
        /// What failed, naming the file involved.
        source: PersistError,
    },
    /// Restoring a catalog from a snapshot directory
    /// ([`Linker::open`](crate::serve::Linker::open)) failed: the
    /// directory holds no manifest at all, or every manifest generation
    /// failed validation. Nothing half-loaded is ever returned.
    RestoreFailed {
        /// What failed, naming the directory or file involved.
        source: PersistError,
    },
    /// An error injected through a `fail_point!` `return` action
    /// (fault-injection builds only).
    Injected {
        /// The failpoint site that fired.
        site: String,
        /// The action's argument, if any.
        message: String,
    },
}

impl LinkError {
    /// Construct an [`LinkError::Injected`] from a failpoint site and its
    /// optional action argument.
    pub fn injected(site: &str, message: Option<String>) -> Self {
        LinkError::Injected {
            site: site.to_string(),
            message: message.unwrap_or_default(),
        }
    }
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::BlockingPanicked { blocker, payload } => {
                write!(f, "blocking phase ({blocker}) panicked: {payload}")
            }
            LinkError::WorkerPanicked {
                worker,
                payload,
                survivors,
                partial_links,
            } => write!(
                f,
                "comparison worker {worker} panicked ({survivors} workers survived, \
                 {partial_links} partial links drained): {payload}"
            ),
            LinkError::ShardBuildPanicked { shard, payload } => {
                write!(f, "columnarising shard {shard} panicked: {payload}")
            }
            LinkError::EpochBuildPanicked { payload } => {
                write!(
                    f,
                    "epoch build panicked (previous epoch still serving): {payload}"
                )
            }
            LinkError::ProbePanicked { payload } => write!(f, "probe panicked: {payload}"),
            LinkError::IngestFailed { payload } => {
                write!(f, "streaming ingest failed (nothing published): {payload}")
            }
            LinkError::SnapshotFailed { source } => {
                write!(
                    f,
                    "catalog snapshot spill failed (previous manifest generation, \
                     if any, is still the restart point): {source}"
                )
            }
            LinkError::RestoreFailed { source } => {
                write!(f, "catalog snapshot restore failed: {source}")
            }
            LinkError::Injected { site, message } => {
                write!(f, "injected failure at failpoint '{site}': {message}")
            }
        }
    }
}

impl std::error::Error for LinkError {
    /// The persistence variants wrap a [`PersistError`] (which in turn
    /// may wrap the underlying [`std::io::Error`]); the panic-containment
    /// variants carry only a stringified payload and have no source.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LinkError::SnapshotFailed { source } | LinkError::RestoreFailed { source } => {
                Some(source)
            }
            _ => None,
        }
    }
}

/// Render a [`catch_unwind`](std::panic::catch_unwind) payload as a
/// string: `panic!("…")` yields `&'static str` or `String`; anything else
/// (a custom `panic_any`) gets a fixed placeholder.
pub(crate) fn panic_payload(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_domain() {
        let e = LinkError::WorkerPanicked {
            worker: 2,
            payload: "boom".into(),
            survivors: 3,
            partial_links: 41,
        };
        let text = e.to_string();
        assert!(text.contains("worker 2"));
        assert!(text.contains("3 workers survived"));
        assert!(text.contains("41 partial links"));
        assert!(text.contains("boom"));
        assert!(LinkError::injected("serve::build_epoch", None)
            .to_string()
            .contains("serve::build_epoch"));
    }

    #[test]
    fn payloads_stringify() {
        let caught = std::panic::catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_payload(caught), "plain str");
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_payload(caught), "formatted 7");
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(42u8)).unwrap_err();
        assert_eq!(panic_payload(caught), "non-string panic payload");
    }
}
