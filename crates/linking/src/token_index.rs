//! Store-level token and bigram precomputation for the set-based
//! similarity kernels.
//!
//! The naive token measures (`jaccard_tokens`, `jaccard_chars`,
//! `dice_bigrams`, `monge_elkan`) tokenise, lowercase and build
//! `HashSet<String>`s **per candidate pair** — `O(candidates × string
//! work)` with several heap allocations per comparison. A [`TokenIndex`]
//! moves all of that string work to the store: each attribute value (and
//! each record's full text) is processed **once**, yielding
//!
//! * its tokens as dense ids into a per-store token arena, in appearance
//!   order (Monge-Elkan walks these),
//! * the same ids **sorted by token text and deduplicated** (the set
//!   measures intersect these with a branch-light sorted merge), and
//! * its character bigrams packed into `u64`s (two scalar values), sorted
//!   and deduplicated — bigram intersections are pure integer merges.
//!
//! Token ids are local to one store, so cross-store merges compare the
//! resolved token bytes (each comparison usually fails on the first
//! byte); bigram ids are a pure function of the two characters, so they
//! agree across stores and merge without any resolution. Tokenisation
//! and the bigram short-string convention are shared verbatim with the
//! naive reference path (see [`crate::similarity::token`]), which keeps
//! the kernels bit-identical to the per-pair set construction.
//!
//! A store builds its index lazily on first use
//! ([`RecordStore::token_index`](crate::store::RecordStore::token_index))
//! and caches it for the store's lifetime; the pipeline pre-warms it
//! before spawning comparison workers when the compiled comparator has
//! any set-measure rule.

use crate::similarity::jaro::jaro_winkler_with;
use crate::similarity::scratch::SimScratch;
use crate::similarity::token::{bigram_pairs, lowercase_eq, tokens};
use crate::store::RecordStore;
use std::collections::HashMap;

/// Distinct lowercased tokens of one store, concatenated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct TokenArena {
    text: String,
    /// Byte boundaries: token `t` is `text[bounds[t] .. bounds[t + 1]]`.
    bounds: Vec<u32>,
}

impl TokenArena {
    fn token(&self, id: u32) -> &str {
        &self.text[self.bounds[id as usize] as usize..self.bounds[id as usize + 1] as usize]
    }

    fn len(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }
}

/// Per-value token/bigram lists of one column (or of the per-record
/// full-text pseudo-column): three flat arrays with per-value offsets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct TokenColumn {
    /// Token ids in appearance order (duplicates preserved).
    appear: Vec<u32>,
    appear_offsets: Vec<u32>,
    /// Token ids sorted by token text, deduplicated.
    sorted: Vec<u32>,
    sorted_offsets: Vec<u32>,
    /// Character bigrams packed as `(c0 as u64) << 32 | c1`, sorted,
    /// deduplicated.
    bigrams: Vec<u64>,
    bigram_offsets: Vec<u32>,
}

impl TokenColumn {
    fn appear(&self, value: usize) -> &[u32] {
        &self.appear[self.appear_offsets[value] as usize..self.appear_offsets[value + 1] as usize]
    }

    fn sorted(&self, value: usize) -> &[u32] {
        &self.sorted[self.sorted_offsets[value] as usize..self.sorted_offsets[value + 1] as usize]
    }

    fn bigrams(&self, value: usize) -> &[u64] {
        &self.bigrams[self.bigram_offsets[value] as usize..self.bigram_offsets[value + 1] as usize]
    }
}

/// Lazily-built per-store token/bigram precomputation. See the [module
/// docs](self).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TokenIndex {
    arena: TokenArena,
    /// One entry per store column (same indexing as the store's columns).
    columns: Vec<TokenColumn>,
    /// Per-record full-text token lists (the fallback measure's input).
    full: TokenColumn,
}

/// One value's precomputed token view: its sorted/appearance token ids
/// (resolvable against the owning index's arena), packed bigrams, and
/// the raw value text (for the bigram-less equality tie-break).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ValueTokens<'a> {
    arena: &'a TokenArena,
    appear: &'a [u32],
    sorted: &'a [u32],
    bigrams: &'a [u64],
    raw: &'a str,
}

impl TokenIndex {
    /// Tokenise and bigram-ise every attribute value of `store`, exactly
    /// once each. The full-text pseudo-column stays empty — it is only
    /// consumed by the set-measure *fallback*, which may never fire, so
    /// [`RecordStore::full_token_index`](crate::store::RecordStore::full_token_index)
    /// builds it separately (and lazily) via [`TokenIndex::build_full`].
    pub(crate) fn build(store: &RecordStore) -> Self {
        let mut builder = Builder::default();
        let columns = (0..store.column_count())
            .map(|c| builder.column(store.column_values(c)))
            .collect();
        TokenIndex {
            arena: builder.arena,
            columns,
            full: TokenColumn::default(),
        }
    }

    /// Tokenise and bigram-ise every record's full text (the fallback
    /// measure's input), with its own arena — independent of the
    /// per-value index, so neither forces the other to build.
    pub(crate) fn build_full(store: &RecordStore) -> Self {
        let mut builder = Builder::default();
        let full = builder.column((0..store.len()).map(|r| store.full_text(r)));
        TokenIndex {
            arena: builder.arena,
            columns: Vec::new(),
            full,
        }
    }

    /// Number of distinct lowercased tokens in this index's arena.
    pub fn distinct_tokens(&self) -> usize {
        self.arena.len()
    }

    /// The token view of one column value (`value` is the column-global
    /// value index; `raw` is the value's text from the store).
    pub(crate) fn value_tokens<'a>(
        &'a self,
        column: usize,
        value: usize,
        raw: &'a str,
    ) -> ValueTokens<'a> {
        let column = &self.columns[column];
        ValueTokens {
            arena: &self.arena,
            appear: column.appear(value),
            sorted: column.sorted(value),
            bigrams: column.bigrams(value),
            raw,
        }
    }

    /// The token view of one record's full text.
    pub(crate) fn full_tokens<'a>(&'a self, record: usize, raw: &'a str) -> ValueTokens<'a> {
        ValueTokens {
            arena: &self.arena,
            appear: self.full.appear(record),
            sorted: self.full.sorted(record),
            bigrams: self.full.bigrams(record),
            raw,
        }
    }
}

/// Build-time state: the growing arena plus its interning map (the map
/// is dropped once the index is frozen).
#[derive(Default)]
struct Builder {
    arena: TokenArena,
    ids: HashMap<String, u32>,
}

impl Builder {
    fn intern(&mut self, token: String) -> u32 {
        if let Some(&id) = self.ids.get(&token) {
            return id;
        }
        if self.arena.bounds.is_empty() {
            self.arena.bounds.push(0);
        }
        let id = u32::try_from(self.arena.len()).expect("more than u32::MAX distinct tokens");
        self.arena.text.push_str(&token);
        self.arena
            .bounds
            .push(u32::try_from(self.arena.text.len()).expect("token arena exceeds u32::MAX"));
        self.ids.insert(token, id);
        id
    }

    fn column<'v>(&mut self, values: impl Iterator<Item = &'v str>) -> TokenColumn {
        fn offset(n: usize) -> u32 {
            u32::try_from(n).expect("token column exceeds u32::MAX entries")
        }
        let mut column = TokenColumn {
            appear_offsets: vec![0],
            sorted_offsets: vec![0],
            bigram_offsets: vec![0],
            ..TokenColumn::default()
        };
        let mut scratch_ids: Vec<u32> = Vec::new();
        for value in values {
            let start = column.appear.len();
            for token in tokens(value) {
                let id = self.intern(token);
                column.appear.push(id);
            }
            column.appear_offsets.push(offset(column.appear.len()));

            // Sorted-unique view: order by token text so cross-store
            // merges see one global ordering; equal text ⇒ equal id, so
            // adjacent dedup suffices.
            scratch_ids.clear();
            scratch_ids.extend_from_slice(&column.appear[start..]);
            let arena = &self.arena;
            scratch_ids.sort_unstable_by(|&x, &y| arena.token(x).cmp(arena.token(y)));
            scratch_ids.dedup();
            column.sorted.extend_from_slice(&scratch_ids);
            column.sorted_offsets.push(offset(column.sorted.len()));

            let bigram_start = column.bigrams.len();
            column
                .bigrams
                .extend(bigram_pairs(value).map(|(a, b)| ((a as u64) << 32) | b as u64));
            column.bigrams[bigram_start..].sort_unstable();
            let deduped = {
                let mut write = bigram_start;
                for read in bigram_start..column.bigrams.len() {
                    if write == bigram_start || column.bigrams[read] != column.bigrams[write - 1] {
                        column.bigrams[write] = column.bigrams[read];
                        write += 1;
                    }
                }
                write
            };
            column.bigrams.truncate(deduped);
            column.bigram_offsets.push(offset(column.bigrams.len()));
        }
        column
    }
}

/// Sorted-merge intersection size over packed bigrams (both slices
/// sorted, deduplicated).
fn intersect_bigrams(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Sorted-merge intersection size over token ids from two (possibly
/// different) arenas: ids are ordered by token text, so the merge
/// compares resolved bytes.
fn intersect_tokens(a: &ValueTokens<'_>, b: &ValueTokens<'_>) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.sorted.len() && j < b.sorted.len() {
        match a.arena.token(a.sorted[i]).cmp(b.arena.token(b.sorted[j])) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Jaccard over precomputed token sets (bit-identical to
/// [`crate::similarity::jaccard_tokens`]).
pub(crate) fn jaccard_tokens_kernel(a: &ValueTokens<'_>, b: &ValueTokens<'_>) -> f64 {
    if a.raw == b.raw {
        return 1.0;
    }
    if a.sorted.is_empty() && b.sorted.is_empty() {
        return 1.0;
    }
    let intersection = intersect_tokens(a, b);
    let union = a.sorted.len() + b.sorted.len() - intersection;
    intersection as f64 / union as f64
}

/// Shared empty-set handling of the bigram measures (the short-string
/// convention of [`crate::similarity::token`]): both sides bigram-less →
/// lowercased equality decides; one side bigram-less → `0`.
fn bigram_trivial(a: &ValueTokens<'_>, b: &ValueTokens<'_>) -> Option<f64> {
    if a.bigrams.is_empty() && b.bigrams.is_empty() {
        return Some(if lowercase_eq(a.raw, b.raw) { 1.0 } else { 0.0 });
    }
    if a.bigrams.is_empty() || b.bigrams.is_empty() {
        return Some(0.0);
    }
    None
}

/// Jaccard over precomputed bigram sets (bit-identical to
/// [`crate::similarity::jaccard_chars`]).
pub(crate) fn jaccard_bigrams_kernel(a: &ValueTokens<'_>, b: &ValueTokens<'_>) -> f64 {
    if a.raw == b.raw {
        return 1.0;
    }
    if let Some(trivial) = bigram_trivial(a, b) {
        return trivial;
    }
    let intersection = intersect_bigrams(a.bigrams, b.bigrams);
    let union = a.bigrams.len() + b.bigrams.len() - intersection;
    intersection as f64 / union as f64
}

/// Dice over precomputed bigram sets (bit-identical to
/// [`crate::similarity::dice_bigrams`]).
pub(crate) fn dice_bigrams_kernel(a: &ValueTokens<'_>, b: &ValueTokens<'_>) -> f64 {
    if a.raw == b.raw {
        return 1.0;
    }
    if let Some(trivial) = bigram_trivial(a, b) {
        return trivial;
    }
    let intersection = intersect_bigrams(a.bigrams, b.bigrams) as f64;
    2.0 * intersection / (a.bigrams.len() + b.bigrams.len()) as f64
}

/// Monge-Elkan over precomputed token lists, with the Jaro-Winkler inner
/// measure on the scratch kernels (bit-identical to
/// [`crate::similarity::monge_elkan`]).
pub(crate) fn monge_elkan_kernel(
    a: &ValueTokens<'_>,
    b: &ValueTokens<'_>,
    scratch: &mut SimScratch,
) -> f64 {
    if a.raw == b.raw {
        return 1.0;
    }
    if a.appear.is_empty() && b.appear.is_empty() {
        return 1.0;
    }
    if a.appear.is_empty() || b.appear.is_empty() {
        return 0.0;
    }
    let mut directed = |xs: &ValueTokens<'_>, ys: &ValueTokens<'_>| -> f64 {
        xs.appear
            .iter()
            .map(|&x| {
                ys.appear
                    .iter()
                    .map(|&y| jaro_winkler_with(scratch, xs.arena.token(x), ys.arena.token(y)))
                    .fold(0.0f64, f64::max)
            })
            .sum::<f64>()
            / xs.appear.len() as f64
    };
    (directed(a, b) + directed(b, a)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::similarity::naive;
    use classilink_rdf::Term;
    use proptest::prelude::*;

    const PN: &str = "http://e.org/v#pn";

    /// Build two single-column stores from raw values and return the
    /// per-value token views for (store a, value i) × (store b, value j).
    fn single_value_stores(a: &str, b: &str) -> (RecordStore, RecordStore) {
        let mut ra = Record::new(Term::iri("http://e.org/a"));
        ra.add(PN, a);
        let mut rb = Record::new(Term::iri("http://e.org/b"));
        rb.add(PN, b);
        (
            RecordStore::from_records(&[ra]),
            RecordStore::from_records(&[rb]),
        )
    }

    fn kernels_vs_naive(a: &str, b: &str) {
        let (sa, sb) = single_value_stores(a, b);
        let (ia, ib) = (sa.token_index(), sb.token_index());
        let pid_a = sa.property(PN).unwrap();
        let pid_b = sb.property(PN).unwrap();
        let va = sa.value_list(0, pid_a);
        let vb = sb.value_list(0, pid_b);
        let ta = ia.value_tokens(pid_a.index(), va.value_index(0), va.get(0));
        let tb = ib.value_tokens(pid_b.index(), vb.value_index(0), vb.get(0));
        let mut scratch = SimScratch::new();
        assert_eq!(
            jaccard_tokens_kernel(&ta, &tb).to_bits(),
            naive::jaccard_tokens(a, b).to_bits(),
            "jaccard_tokens({a:?}, {b:?})"
        );
        assert_eq!(
            jaccard_bigrams_kernel(&ta, &tb).to_bits(),
            naive::jaccard_chars(a, b).to_bits(),
            "jaccard_chars({a:?}, {b:?})"
        );
        assert_eq!(
            dice_bigrams_kernel(&ta, &tb).to_bits(),
            naive::dice_bigrams(a, b).to_bits(),
            "dice_bigrams({a:?}, {b:?})"
        );
        assert_eq!(
            monge_elkan_kernel(&ta, &tb, &mut scratch).to_bits(),
            naive::monge_elkan(a, b).to_bits(),
            "monge_elkan({a:?}, {b:?})"
        );
    }

    #[test]
    fn kernel_matches_naive_on_pinned_cases() {
        for (a, b) in [
            ("fixed film resistor", "film capacitor"),
            ("CRCW0805-10K", "CRCW0805 10K"),
            ("", ""),
            ("a", "ab"),
            ("a", "A"),
            ("night", "nacht"),
            ("vishay fixed film", "vishai fixd film"),
            ("  ", "--"),
            ("ab", "ba"),
        ] {
            kernels_vs_naive(a, b);
        }
    }

    #[test]
    fn kernel_matches_naive_on_non_ascii() {
        for (a, b) in [
            ("café au lait", "cafe au lait"),
            ("résistance 10kΩ", "resistance 10kΩ"),
            ("😀😀 part", "😀 part"),
            ("e\u{301}tude", "étude"), // combining acute vs precomposed
            ("İstanbul", "istanbul"),  // lowercase expansion
            ("ß", "ss"),
            ("ß", "ß"),
        ] {
            kernels_vs_naive(a, b);
        }
    }

    #[test]
    fn index_is_built_once_and_reused() {
        let (sa, _) = single_value_stores("fixed film resistor", "x");
        let first = sa.token_index() as *const TokenIndex;
        let second = sa.token_index() as *const TokenIndex;
        assert_eq!(first, second);
        assert_eq!(sa.token_index().distinct_tokens(), 3);
    }

    #[test]
    fn full_text_tokens_cover_all_attributes() {
        let mut r = Record::new(Term::iri("http://e.org/a"));
        r.add(PN, "CRCW0805").add("http://e.org/v#mfr", "Vishay");
        let store = RecordStore::from_records(&[r]);
        let index = store.full_token_index();
        let full = index.full_tokens(0, store.full_text(0));
        assert_eq!(full.appear.len(), 2);
        assert_eq!(full.sorted.len(), 2);
    }

    proptest! {
        /// The token-index kernels are bit-identical to the naive
        /// per-pair set construction on arbitrary printable input.
        #[test]
        fn prop_kernels_match_naive(a in "\\PC{0,20}", b in "\\PC{0,20}") {
            kernels_vs_naive(&a, &b);
        }

        /// And on ASCII part-number-like input (the common case).
        #[test]
        fn prop_kernels_match_naive_ascii(a in "[a-zA-Z0-9 -]{0,24}", b in "[a-zA-Z0-9 -]{0,24}") {
            kernels_vs_naive(&a, &b);
        }
    }
}
