//! Store-level token and bigram precomputation for the set-based
//! similarity kernels.
//!
//! The naive token measures (`jaccard_tokens`, `jaccard_chars`,
//! `dice_bigrams`, `monge_elkan`) tokenise, lowercase and build
//! `HashSet<String>`s **per candidate pair** — `O(candidates × string
//! work)` with several heap allocations per comparison. A [`TokenIndex`]
//! moves all of that string work to the store: each attribute value (and
//! each record's full text) is processed **once**, yielding
//!
//! * its tokens as dense ids into a per-store token arena, in appearance
//!   order (Monge-Elkan walks these),
//! * the same ids **sorted by token text and deduplicated** (the set
//!   measures intersect these with a branch-light sorted merge), and
//! * its character bigrams packed into `u64`s (two scalar values), sorted
//!   and deduplicated — bigram intersections are pure integer merges.
//!
//! Token ids are local to one store, so cross-store merges compare the
//! resolved token bytes (each comparison usually fails on the first
//! byte); bigram ids are a pure function of the two characters, so they
//! agree across stores and merge without any resolution. Tokenisation
//! and the bigram short-string convention are shared verbatim with the
//! naive reference path (see [`crate::similarity::token`]), which keeps
//! the kernels bit-identical to the per-pair set construction.
//!
//! A store builds its index lazily on first use
//! ([`RecordStore::token_index`](crate::store::RecordStore::token_index))
//! and caches it for the store's lifetime; the pipeline pre-warms it
//! before spawning comparison workers when the compiled comparator has
//! any set-measure rule.

use crate::blocking::KeySide;
use crate::similarity::jaro::jaro_winkler_with;
use crate::similarity::scratch::SimScratch;
use crate::similarity::token::{bigram_pairs, lowercase_eq, tokens};
use crate::store::RecordStore;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Pack a character bigram into one `u64` — the shared scalar bigram
/// representation of the [`TokenIndex`] set kernels and the
/// [`KeyIndex`] blocking artifacts (intersections become pure integer
/// merges).
#[inline]
pub(crate) fn pack_bigram(a: char, b: char) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Distinct lowercased tokens of one store, concatenated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct TokenArena {
    text: String,
    /// Byte boundaries: token `t` is `text[bounds[t] .. bounds[t + 1]]`.
    bounds: Vec<u32>,
}

impl TokenArena {
    fn token(&self, id: u32) -> &str {
        &self.text[self.bounds[id as usize] as usize..self.bounds[id as usize + 1] as usize]
    }

    fn len(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }
}

/// Per-value token/bigram lists of one column (or of the per-record
/// full-text pseudo-column): three flat arrays with per-value offsets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct TokenColumn {
    /// Token ids in appearance order (duplicates preserved).
    appear: Vec<u32>,
    appear_offsets: Vec<u32>,
    /// Token ids sorted by token text, deduplicated.
    sorted: Vec<u32>,
    sorted_offsets: Vec<u32>,
    /// Character bigrams packed as `(c0 as u64) << 32 | c1`, sorted,
    /// deduplicated.
    bigrams: Vec<u64>,
    bigram_offsets: Vec<u32>,
}

impl TokenColumn {
    fn appear(&self, value: usize) -> &[u32] {
        &self.appear[self.appear_offsets[value] as usize..self.appear_offsets[value + 1] as usize]
    }

    fn sorted(&self, value: usize) -> &[u32] {
        &self.sorted[self.sorted_offsets[value] as usize..self.sorted_offsets[value + 1] as usize]
    }

    fn bigrams(&self, value: usize) -> &[u64] {
        &self.bigrams[self.bigram_offsets[value] as usize..self.bigram_offsets[value + 1] as usize]
    }
}

/// Lazily-built per-store token/bigram precomputation. See the [module
/// docs](self).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TokenIndex {
    arena: TokenArena,
    /// One entry per store column (same indexing as the store's columns).
    columns: Vec<TokenColumn>,
    /// Per-record full-text token lists (the fallback measure's input).
    full: TokenColumn,
}

/// One value's precomputed token view: its sorted/appearance token ids
/// (resolvable against the owning index's arena), packed bigrams, and
/// the raw value text (for the bigram-less equality tie-break).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ValueTokens<'a> {
    arena: &'a TokenArena,
    appear: &'a [u32],
    sorted: &'a [u32],
    bigrams: &'a [u64],
    raw: &'a str,
}

impl TokenIndex {
    /// Tokenise and bigram-ise every attribute value of `store`, exactly
    /// once each. The full-text pseudo-column stays empty — it is only
    /// consumed by the set-measure *fallback*, which may never fire, so
    /// [`RecordStore::full_token_index`](crate::store::RecordStore::full_token_index)
    /// builds it separately (and lazily) via [`TokenIndex::build_full`].
    pub(crate) fn build(store: &RecordStore) -> Self {
        let mut builder = Builder::default();
        let columns = (0..store.column_count())
            .map(|c| builder.column(store.column_values(c)))
            .collect();
        TokenIndex {
            arena: builder.arena,
            columns,
            full: TokenColumn::default(),
        }
    }

    /// Tokenise and bigram-ise every record's full text (the fallback
    /// measure's input), with its own arena — independent of the
    /// per-value index, so neither forces the other to build.
    pub(crate) fn build_full(store: &RecordStore) -> Self {
        let mut builder = Builder::default();
        let full = builder.column((0..store.len()).map(|r| store.full_text(r)));
        TokenIndex {
            arena: builder.arena,
            columns: Vec::new(),
            full,
        }
    }

    /// Number of distinct lowercased tokens in this index's arena.
    pub fn distinct_tokens(&self) -> usize {
        self.arena.len()
    }

    /// The token view of one column value (`value` is the column-global
    /// value index; `raw` is the value's text from the store).
    pub(crate) fn value_tokens<'a>(
        &'a self,
        column: usize,
        value: usize,
        raw: &'a str,
    ) -> ValueTokens<'a> {
        let column = &self.columns[column];
        ValueTokens {
            arena: &self.arena,
            appear: column.appear(value),
            sorted: column.sorted(value),
            bigrams: column.bigrams(value),
            raw,
        }
    }

    /// The token view of one record's full text.
    pub(crate) fn full_tokens<'a>(&'a self, record: usize, raw: &'a str) -> ValueTokens<'a> {
        ValueTokens {
            arena: &self.arena,
            appear: self.full.appear(record),
            sorted: self.full.sorted(record),
            bigrams: self.full.bigrams(record),
            raw,
        }
    }
}

/// Build-time state: the growing arena plus its interning map (the map
/// is dropped once the index is frozen).
#[derive(Default)]
struct Builder {
    arena: TokenArena,
    ids: HashMap<String, u32>,
}

impl Builder {
    fn intern(&mut self, token: String) -> u32 {
        if let Some(&id) = self.ids.get(&token) {
            return id;
        }
        if self.arena.bounds.is_empty() {
            self.arena.bounds.push(0);
        }
        let id = u32::try_from(self.arena.len()).expect("more than u32::MAX distinct tokens");
        self.arena.text.push_str(&token);
        self.arena
            .bounds
            .push(u32::try_from(self.arena.text.len()).expect("token arena exceeds u32::MAX"));
        self.ids.insert(token, id);
        id
    }

    fn column<'v>(&mut self, values: impl Iterator<Item = &'v str>) -> TokenColumn {
        fn offset(n: usize) -> u32 {
            u32::try_from(n).expect("token column exceeds u32::MAX entries")
        }
        let mut column = TokenColumn {
            appear_offsets: vec![0],
            sorted_offsets: vec![0],
            bigram_offsets: vec![0],
            ..TokenColumn::default()
        };
        let mut scratch_ids: Vec<u32> = Vec::new();
        for value in values {
            let start = column.appear.len();
            for token in tokens(value) {
                let id = self.intern(token);
                column.appear.push(id);
            }
            column.appear_offsets.push(offset(column.appear.len()));

            // Sorted-unique view: order by token text so cross-store
            // merges see one global ordering; equal text ⇒ equal id, so
            // adjacent dedup suffices.
            scratch_ids.clear();
            scratch_ids.extend_from_slice(&column.appear[start..]);
            let arena = &self.arena;
            scratch_ids.sort_unstable_by(|&x, &y| arena.token(x).cmp(arena.token(y)));
            scratch_ids.dedup();
            column.sorted.extend_from_slice(&scratch_ids);
            column.sorted_offsets.push(offset(column.sorted.len()));

            let bigram_start = column.bigrams.len();
            column
                .bigrams
                .extend(bigram_pairs(value).map(|(a, b)| pack_bigram(a, b)));
            column.bigrams[bigram_start..].sort_unstable();
            let deduped = {
                let mut write = bigram_start;
                for read in bigram_start..column.bigrams.len() {
                    if write == bigram_start || column.bigrams[read] != column.bigrams[write - 1] {
                        column.bigrams[write] = column.bigrams[read];
                        write += 1;
                    }
                }
                write
            };
            column.bigrams.truncate(deduped);
            column.bigram_offsets.push(offset(column.bigrams.len()));
        }
        column
    }
}

/// Sorted-merge intersection size over packed bigrams (both slices
/// sorted, deduplicated).
fn intersect_bigrams(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Sorted-merge intersection size over token ids from two (possibly
/// different) arenas: ids are ordered by token text, so the merge
/// compares resolved bytes.
fn intersect_tokens(a: &ValueTokens<'_>, b: &ValueTokens<'_>) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.sorted.len() && j < b.sorted.len() {
        match a.arena.token(a.sorted[i]).cmp(b.arena.token(b.sorted[j])) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Jaccard over precomputed token sets (bit-identical to
/// [`crate::similarity::jaccard_tokens`]).
pub(crate) fn jaccard_tokens_kernel(a: &ValueTokens<'_>, b: &ValueTokens<'_>) -> f64 {
    if a.raw == b.raw {
        return 1.0;
    }
    if a.sorted.is_empty() && b.sorted.is_empty() {
        return 1.0;
    }
    let intersection = intersect_tokens(a, b);
    let union = a.sorted.len() + b.sorted.len() - intersection;
    intersection as f64 / union as f64
}

/// Shared empty-set handling of the bigram measures (the short-string
/// convention of [`crate::similarity::token`]): both sides bigram-less →
/// lowercased equality decides; one side bigram-less → `0`.
fn bigram_trivial(a: &ValueTokens<'_>, b: &ValueTokens<'_>) -> Option<f64> {
    if a.bigrams.is_empty() && b.bigrams.is_empty() {
        return Some(if lowercase_eq(a.raw, b.raw) { 1.0 } else { 0.0 });
    }
    if a.bigrams.is_empty() || b.bigrams.is_empty() {
        return Some(0.0);
    }
    None
}

/// Jaccard over precomputed bigram sets (bit-identical to
/// [`crate::similarity::jaccard_chars`]).
pub(crate) fn jaccard_bigrams_kernel(a: &ValueTokens<'_>, b: &ValueTokens<'_>) -> f64 {
    if a.raw == b.raw {
        return 1.0;
    }
    if let Some(trivial) = bigram_trivial(a, b) {
        return trivial;
    }
    let intersection = intersect_bigrams(a.bigrams, b.bigrams);
    let union = a.bigrams.len() + b.bigrams.len() - intersection;
    intersection as f64 / union as f64
}

/// Dice over precomputed bigram sets (bit-identical to
/// [`crate::similarity::dice_bigrams`]).
pub(crate) fn dice_bigrams_kernel(a: &ValueTokens<'_>, b: &ValueTokens<'_>) -> f64 {
    if a.raw == b.raw {
        return 1.0;
    }
    if let Some(trivial) = bigram_trivial(a, b) {
        return trivial;
    }
    let intersection = intersect_bigrams(a.bigrams, b.bigrams) as f64;
    2.0 * intersection / (a.bigrams.len() + b.bigrams.len()) as f64
}

/// Monge-Elkan over precomputed token lists, with the Jaro-Winkler inner
/// measure on the scratch kernels (bit-identical to
/// [`crate::similarity::monge_elkan`]).
pub(crate) fn monge_elkan_kernel(
    a: &ValueTokens<'_>,
    b: &ValueTokens<'_>,
    scratch: &mut SimScratch,
) -> f64 {
    if a.raw == b.raw {
        return 1.0;
    }
    if a.appear.is_empty() && b.appear.is_empty() {
        return 1.0;
    }
    if a.appear.is_empty() || b.appear.is_empty() {
        return 0.0;
    }
    let mut directed = |xs: &ValueTokens<'_>, ys: &ValueTokens<'_>| -> f64 {
        xs.appear
            .iter()
            .map(|&x| {
                ys.appear
                    .iter()
                    .map(|&y| jaro_winkler_with(scratch, xs.arena.token(x), ys.arena.token(y)))
                    .fold(0.0f64, f64::max)
            })
            .sum::<f64>()
            / xs.appear.len() as f64
    };
    (directed(a, b) + directed(b, a)) / 2.0
}

/// Store-level blocking-key precomputation: the blocking analogue of the
/// [`TokenIndex`].
///
/// Blockers used to normalise (lowercase, filter, truncate) the blocking
/// key of every record **per call** — and the bigram blocker re-built
/// padded bigram `String` sets on top — so candidate generation allocated
/// per record even though the underlying values never change. A
/// [`KeyIndex`] moves that work to the store: for one key *recipe*
/// (property × prefix length × alphanumeric filter, see
/// [`BlockingKey`](crate::blocking::BlockingKey)) every record's
/// normalised value is computed **once** into a text arena, together with
///
/// * the byte boundary of the truncated blocking key (the key is always a
///   prefix of the full normalised value, so both views are slices of one
///   arena — no second pass),
/// * the records sorted by key, so key-equality blocking resolves a probe
///   key to its block with two binary searches, and
/// * on demand (the crate-private `KeyBigramIndex`), each key's
///   **padded character bigrams** packed into `u64`s exactly as the
///   [`TokenIndex`] packs value bigrams, plus an inverted gram → records
///   index — bigram blocking becomes integer probes over precomputed
///   postings.
///
/// Indexes are built lazily by [`RecordStore::key_index`] and cached per
/// recipe for the store's lifetime, so repeated blocking calls (and every
/// shard of a sharded run) reuse them; after the first call the streaming
/// blockers allocate nothing per record (proved by
/// `crates/linking/tests/zero_alloc.rs`).
#[derive(Debug, Default)]
pub struct KeyIndex {
    /// Full normalised values, concatenated.
    text: String,
    /// Byte boundaries: record `r`'s full normalised value (its sort
    /// value) is `text[bounds[r] .. bounds[r + 1]]`.
    bounds: Vec<u32>,
    /// Absolute byte index where record `r`'s truncated blocking key ends
    /// (`bounds[r] ≤ key_ends[r] ≤ bounds[r + 1]`).
    key_ends: Vec<u32>,
    /// Record ids sorted by (truncated key, id).
    sorted: Vec<u32>,
    /// Record ids sorted by (full sort value, id) — the sort ladder of
    /// sorted-neighbourhood blocking, built on first use.
    value_sorted: OnceLock<Vec<u32>>,
    /// Padded key bigrams, built on first bigram-blocking use.
    bigrams: OnceLock<KeyBigramIndex>,
}

impl KeyIndex {
    /// Normalise every record's key once. `side` must have been resolved
    /// against `store`'s schema.
    pub(crate) fn build(store: &RecordStore, side: &KeySide) -> Self {
        let mut index = KeyIndex::default();
        index.rebuild(store, side);
        index
    }

    /// Re-normalise every record of `store` into this index **in
    /// place**, retaining every buffer's capacity. Derived artifacts
    /// that were already built — the bigram index, the value-sorted
    /// ladder — are rebuilt in place too (never dropped back to cold),
    /// so a warm index over a store whose contents were replaced (the
    /// serving layer's one-record probe store) re-keys without heap
    /// allocation once its buffers fit the new contents.
    pub(crate) fn rebuild(&mut self, store: &RecordStore, side: &KeySide) {
        fn offset(n: usize) -> u32 {
            u32::try_from(n).expect("key index exceeds u32::MAX bytes")
        }
        let bigrams = self.bigrams.take();
        let ladder = self.value_sorted.take();
        self.text.clear();
        self.bounds.clear();
        self.bounds.push(0);
        self.key_ends.clear();
        for record in 0..store.len() {
            let start = self.text.len();
            let key_len = match side.property().and_then(|p| store.first(record, p)) {
                Some(value) => side.write_normalised(value, &mut self.text),
                None => 0,
            };
            self.key_ends.push(offset(start + key_len));
            self.bounds.push(offset(self.text.len()));
        }
        self.sorted.clear();
        self.sorted.extend(0..store.len() as u32);
        let (text, bounds, key_ends) = (&self.text, &self.bounds, &self.key_ends);
        let key = |r: u32| &text[bounds[r as usize] as usize..key_ends[r as usize] as usize];
        self.sorted
            .sort_unstable_by(|&a, &b| key(a).cmp(key(b)).then(a.cmp(&b)));
        if let Some(mut index) = bigrams {
            index.rebuild(self);
            let _ = self.bigrams.set(index);
        }
        if let Some(mut ladder) = ladder {
            self.fill_value_sorted(&mut ladder);
            let _ = self.value_sorted.set(ladder);
        }
    }

    /// Number of records indexed.
    pub fn len(&self) -> usize {
        self.key_ends.len()
    }

    /// `true` when the index covers no record.
    pub fn is_empty(&self) -> bool {
        self.key_ends.is_empty()
    }

    /// The (truncated, normalised) blocking key of `record` — byte-equal
    /// to [`KeySide::key`], as a borrow of the arena.
    pub fn key(&self, record: usize) -> &str {
        &self.text[self.bounds[record] as usize..self.key_ends[record] as usize]
    }

    /// The full normalised value of `record` — byte-equal to
    /// [`KeySide::sort_value`], as a borrow of the arena.
    pub fn sort_value(&self, record: usize) -> &str {
        &self.text[self.bounds[record] as usize..self.bounds[record + 1] as usize]
    }

    /// The ids of every record whose blocking key equals `key`, in
    /// ascending id order (two binary searches over the key-sorted ids).
    pub fn records_with_key(&self, key: &str) -> &[u32] {
        &self.sorted[self.key_range(key)]
    }

    /// The range of [`sorted_records`](Self::sorted_records) holding
    /// every record whose blocking key equals `key` (two binary
    /// searches). This is what keyed candidate blocks store instead of
    /// the pairs themselves: a standard-blocking block is
    /// `(external, key_range)` — O(1), however large the block.
    pub fn key_range(&self, key: &str) -> std::ops::Range<usize> {
        let lo = self.sorted.partition_point(|&r| self.key(r as usize) < key);
        let run = self.sorted[lo..].partition_point(|&r| self.key(r as usize) == key);
        lo..lo + run
    }

    /// The key-sorted record table: every record id, ordered by
    /// (truncated key, id). Keyed candidate blocks
    /// ([`CandidateRuns`](crate::blocking::CandidateRuns)) are decoded
    /// as slices of this table.
    pub fn sorted_records(&self) -> &[u32] {
        &self.sorted
    }

    /// Every record id ordered by (full sort value, id) — the sort
    /// ladder sorted-neighbourhood blocking windows over. Built on
    /// first use and cached for the index's lifetime.
    pub fn value_sorted(&self) -> &[u32] {
        self.value_sorted.get_or_init(|| {
            let mut ladder = Vec::new();
            self.fill_value_sorted(&mut ladder);
            ladder
        })
    }

    /// Fill `ladder` with every record id ordered by (sort value, id),
    /// reusing its capacity (shared by the lazy build and the in-place
    /// [`rebuild`](Self::rebuild)).
    fn fill_value_sorted(&self, ladder: &mut Vec<u32>) {
        ladder.clear();
        ladder.extend(0..self.len() as u32);
        ladder.sort_unstable_by(|&a, &b| {
            self.sort_value(a as usize)
                .cmp(self.sort_value(b as usize))
                .then(a.cmp(&b))
        });
    }

    /// Eagerly build every artifact this index otherwise derives on
    /// first use — the value-sorted ladder (sorted-neighbourhood
    /// blocking), the padded key-bigram postings, and one cached
    /// posting layout per requested bigram-blocking threshold — so a
    /// long-lived catalog can pay the build cost when it is published
    /// instead of on its first probe (see `crate::serve`).
    pub fn warm(&self, thresholds: &[f64]) {
        self.value_sorted();
        let bigrams = self.bigram_index();
        for &threshold in thresholds {
            bigrams.threshold_layout(threshold);
        }
    }

    /// The padded key-bigram artifacts, built on first use and cached.
    pub(crate) fn bigram_index(&self) -> &KeyBigramIndex {
        self.bigrams.get_or_init(|| KeyBigramIndex::build(self))
    }
}

/// Per-record **padded** key bigram sets (packed `u64`s, sorted,
/// deduplicated) plus the inverted gram → records index bigram blocking
/// probes. Grams replicate the classic padded-bigram convention of
/// [`classilink_segment::CharNGramSegmenter::padded_bigrams`] — the key
/// `"ab"` yields `{#a, ab, b#}`, the empty key yields `{##}` — so the
/// candidate sets are byte-identical to the string-based reference.
///
/// Beyond the plain sets, the index carries the set-similarity-join
/// layout the filtered bigram probe
/// ([`BigramBlocker`](crate::blocking::BigramBlocker)) walks:
///
/// * [`df_set`](Self::df_set) — each record's grams as *gram ids*,
///   ordered by ascending document frequency (rare grams first; equal
///   df breaks by gram id, i.e. gram value) — a total order shared by
///   every record, which is what makes prefix and positional filtering
///   sound;
/// * each gram's posting list sorted by **ascending set size** (ties by
///   record id), each posting carrying its record's set size (the
///   positional filter's threshold input) and **tail length** — the
///   number of grams from this one to the end of the record's
///   df-ordered set, `tail = size − position`;
/// * per-threshold [`ThresholdLayout`]s (built lazily, cached by
///   threshold bits) that re-sort every gram's postings by the largest
///   probe size still needing them, so a probe cuts each list to
///   exactly its needed postings with one `partition_point` — the
///   ubiquitous grams that sit at the tail of every record's df order
///   are never even scanned.
#[derive(Debug, Default)]
pub(crate) struct KeyBigramIndex {
    /// Per-record bigram sets, flat, **value-sorted**; record `r` owns
    /// `sets[set_offsets[r] .. set_offsets[r + 1]]`.
    sets: Vec<u64>,
    set_offsets: Vec<u32>,
    /// Per-record gram ids (indexes into `grams`), **df-sorted** (rare
    /// first, ties by gram id); shares `set_offsets` with `sets`.
    df_sets: Vec<u32>,
    /// Distinct grams over all records, sorted by value.
    grams: Vec<u64>,
    /// Posting boundaries into the posting arrays, parallel to `grams`.
    posting_offsets: Vec<u32>,
    /// Record ids per gram, sorted by (ascending set size, record id)
    /// within each gram — probe positions too late for same-or-larger
    /// sets cut this list to the small sets whose own threshold is
    /// still reachable with one `partition_point` over the size slice.
    postings: Vec<u32>,
    /// Set size of each posting's record, parallel to `postings` — the
    /// positional filter's threshold input.
    posting_sizes: Vec<u32>,
    /// Tail length of each posting: grams from this one (inclusive) to
    /// the end of its record's df-ordered set, parallel to `postings`.
    posting_tails: Vec<u32>,
    /// Per-threshold posting permutations ([`ThresholdLayout`]), built
    /// on a threshold's first probe and cached for the index's
    /// lifetime (keyed by the threshold's bit pattern).
    layouts: Mutex<Vec<(u64, Arc<ThresholdLayout>)>>,
    /// Smallest per-record set size (0 only when the index is empty).
    min_set_len: u32,
    /// Largest per-record set size.
    max_set_len: u32,
    /// Build scratch retained across [`rebuild`](Self::rebuild)s: the
    /// flat (gram, record) inversion pairs.
    scratch_pairs: Vec<(u64, u32)>,
    /// Build scratch retained across rebuilds: the flat
    /// (gram id, set size, record, tail) posting entries.
    scratch_entries: Vec<(u32, u32, u32, u32)>,
    /// Build scratch retained across rebuilds: document frequency per
    /// distinct gram, parallel to `grams` during a build.
    scratch_dfs: Vec<u32>,
}

/// One threshold's posting permutation: every gram's postings sorted by
/// **descending entry key** `ekey` — the largest probe set size that
/// still needs this posting.
///
/// A posting (record `B`, set size `b`, tail `t`) is *needed* by a
/// probe of set size `a` exactly when the pair's sharing rule fits the
/// posting's tail plus the prefix-order slack:
/// `required(min(a, b)) ≤ t + K − 1  ⟺  min(a, b) ≤ maxa(t)`, where
/// `maxa(t)` is the largest set size `m` with `required(m) ≤ t + K − 1`
/// (`required` is non-decreasing, so the equivalence is exact). That
/// makes the needed-entry test a pure threshold on one precomputed
/// per-posting key,
///
/// `ekey = if b ≤ maxa(t) { u32::MAX } else { maxa(t) }`,
///
/// (`b ≤ maxa(t)` ⟹ needed by *every* probe), so a probe cuts each
/// gram's list to **exactly** its needed postings with one binary
/// search for `ekey ≥ a` — no second window, no dedup pass, every
/// scanned entry counted at most once per walk position by
/// construction.
#[derive(Debug, Default)]
pub(crate) struct ThresholdLayout {
    /// Posting boundaries, parallel to the owning index's `grams`
    /// (copied so the layout is self-contained).
    offsets: Vec<u32>,
    /// Entry keys per posting, descending within each gram.
    ekeys: Vec<u32>,
    /// Record ids parallel to `ekeys`.
    records: Vec<u32>,
    /// Set sizes parallel to `ekeys`.
    sizes: Vec<u32>,
    /// Tail lengths parallel to `ekeys`.
    tails: Vec<u32>,
}

impl ThresholdLayout {
    /// Gram id `id`'s postings as parallel slices
    /// `(entry keys, records, set sizes, tail lengths)`, entry keys
    /// descending.
    pub(crate) fn window(&self, id: usize) -> (&[u32], &[u32], &[u32], &[u32]) {
        let range = self.offsets[id] as usize..self.offsets[id + 1] as usize;
        (
            &self.ekeys[range.clone()],
            &self.records[range.clone()],
            &self.sizes[range.clone()],
            &self.tails[range],
        )
    }
}

/// The padding character of the classic bigram-blocking convention.
const PAD: char = '#';

/// Prefix-filter order of the filtered bigram probe (see
/// [`BigramBlocker`](crate::blocking::BigramBlocker)): walked counts
/// are kept complete over every record's first `size − T + K`
/// df-ordered grams, so a count below `min(K, T)` rejects without a
/// verification scan. The constant lives here because it shapes the
/// posting layout: every [`ThresholdLayout`] entry key bakes `K` in.
pub(crate) const PREFIX_ORDER: usize = 3;

impl KeyBigramIndex {
    fn build(keys: &KeyIndex) -> Self {
        let mut index = KeyBigramIndex::default();
        index.rebuild(keys);
        index
    }

    /// Re-derive every posting structure from `keys` **in place**,
    /// retaining the capacity of every array (including the two build
    /// scratch buffers and the threshold-layout cache vector), so a
    /// warm index whose backing [`KeyIndex`] was
    /// [rebuilt](KeyIndex::rebuild) re-inverts without heap allocation
    /// once its buffers fit the new contents. Cached threshold layouts
    /// are invalidated (they describe the old postings).
    fn rebuild(&mut self, keys: &KeyIndex) {
        fn offset(n: usize) -> u32 {
            u32::try_from(n).expect("key bigram index exceeds u32::MAX entries")
        }
        self.sets.clear();
        self.set_offsets.clear();
        self.set_offsets.push(0);
        for record in 0..keys.len() {
            let start = self.sets.len();
            let key = keys.key(record);
            if key.is_empty() {
                // The padded window of an empty value is the pad pair
                // itself — not "no grams" — matching the segmenter.
                self.sets.push(pack_bigram(PAD, PAD));
            } else {
                let mut prev = PAD;
                for c in key.chars() {
                    self.sets.push(pack_bigram(prev, c));
                    prev = c;
                }
                self.sets.push(pack_bigram(prev, PAD));
            }
            self.sets[start..].sort_unstable();
            let deduped = {
                let mut write = start;
                for read in start..self.sets.len() {
                    if write == start || self.sets[read] != self.sets[write - 1] {
                        self.sets[write] = self.sets[read];
                        write += 1;
                    }
                }
                write
            };
            self.sets.truncate(deduped);
            self.set_offsets.push(offset(self.sets.len()));
        }

        // Distinct grams and their document frequencies: one flat
        // (gram, record) sort, as a plain inversion would do.
        self.scratch_pairs.clear();
        for record in 0..keys.len() {
            let range = self.set_offsets[record] as usize..self.set_offsets[record + 1] as usize;
            let sets = &self.sets;
            self.scratch_pairs
                .extend(sets[range].iter().map(|&g| (g, record as u32)));
        }
        self.scratch_pairs.sort_unstable();
        self.grams.clear();
        self.scratch_dfs.clear();
        for &(gram, _) in &self.scratch_pairs {
            if self.grams.last() == Some(&gram) {
                *self.scratch_dfs.last_mut().expect("df parallel to grams") += 1;
            } else {
                self.grams.push(gram);
                self.scratch_dfs.push(1);
            }
        }
        // Per-record df-ordered gram ids: rare grams first, equal df
        // broken by gram id (= gram value) — one total order shared by
        // every record, so prefix and positional filtering agree on it.
        self.df_sets.clear();
        for record in 0..keys.len() {
            let start = self.df_sets.len();
            let range = self.set_offsets[record] as usize..self.set_offsets[record + 1] as usize;
            for i in range {
                let id = self
                    .grams
                    .binary_search(&self.sets[i])
                    .expect("set gram missing from the gram table");
                self.df_sets.push(id as u32);
            }
            let dfs = &self.scratch_dfs;
            self.df_sets[start..].sort_unstable_by_key(|&id| (dfs[id as usize], id));
        }
        // Postings: one (gram id, set size, record, tail length) entry
        // per set element, sorted so each gram's list ascends by
        // (set size, record id) — the late-position size cut's
        // `partition_point` window — and carries the tail length (grams
        // from this one to the record's df-order end), which the
        // positional filter and the per-threshold layouts consume.
        self.scratch_entries.clear();
        let mut min_set_len = u32::MAX;
        let mut max_set_len = 0u32;
        for record in 0..keys.len() {
            let range = self.set_offsets[record] as usize..self.set_offsets[record + 1] as usize;
            let size = offset(range.len());
            min_set_len = min_set_len.min(size);
            max_set_len = max_set_len.max(size);
            let df_sets = &self.df_sets;
            self.scratch_entries
                .extend(df_sets[range].iter().enumerate().map(|(position, &id)| {
                    let tail = size - offset(position);
                    (id, size, record as u32, tail)
                }));
        }
        if keys.is_empty() {
            min_set_len = 0;
        }
        self.scratch_entries.sort_unstable();
        self.posting_offsets.clear();
        self.posting_offsets.push(0);
        self.postings.clear();
        self.posting_sizes.clear();
        self.posting_tails.clear();
        let mut boundary = 0u32;
        for &(id, size, record, tail) in &self.scratch_entries {
            while boundary < id {
                self.posting_offsets.push(offset(self.postings.len()));
                boundary += 1;
            }
            self.postings.push(record);
            self.posting_sizes.push(size);
            self.posting_tails.push(tail);
        }
        while self.posting_offsets.len() < self.grams.len() + 1 {
            self.posting_offsets.push(offset(self.postings.len()));
        }
        self.layouts
            .lock()
            .expect("threshold layout cache poisoned")
            .clear();
        self.min_set_len = min_set_len;
        self.max_set_len = max_set_len;
    }

    /// Record `r`'s distinct padded key bigrams, sorted by value.
    pub(crate) fn set(&self, record: usize) -> &[u64] {
        &self.sets[self.set_offsets[record] as usize..self.set_offsets[record + 1] as usize]
    }

    /// Record `r`'s grams as ids into [`gram_values`](Self::gram_values),
    /// ordered by (document frequency, gram id) — rarest first.
    pub(crate) fn df_set(&self, record: usize) -> &[u32] {
        &self.df_sets[self.set_offsets[record] as usize..self.set_offsets[record + 1] as usize]
    }

    /// The distinct grams over all records, sorted by packed value;
    /// positions in this table are the gram ids every other accessor
    /// speaks.
    pub(crate) fn gram_values(&self) -> &[u64] {
        &self.grams
    }

    /// Document frequency of gram id `id`.
    pub(crate) fn df(&self, id: usize) -> u32 {
        self.posting_offsets[id + 1] - self.posting_offsets[id]
    }

    /// Gram id `id`'s posting list as parallel slices
    /// `(records, set sizes, tail lengths)`, sorted by (ascending set
    /// size, record id) — a largest-viable-size cut is one
    /// `partition_point` over the size slice, and the record's
    /// df-order position of the gram recovers as `size − tail`.
    pub(crate) fn posting_list(&self, id: usize) -> (&[u32], &[u32], &[u32]) {
        let range = self.posting_offsets[id] as usize..self.posting_offsets[id + 1] as usize;
        (
            &self.postings[range.clone()],
            &self.posting_sizes[range.clone()],
            &self.posting_tails[range],
        )
    }

    /// The cached [`ThresholdLayout`] for `threshold`, built on its
    /// first request. The build is `O(postings log postings)` and runs
    /// once per distinct threshold for the index's lifetime; warm
    /// probes take the lock, find the entry, and clone the `Arc`
    /// without allocating.
    pub(crate) fn threshold_layout(&self, threshold: f64) -> Arc<ThresholdLayout> {
        let bits = threshold.to_bits();
        let mut cache = self
            .layouts
            .lock()
            .expect("threshold layout cache poisoned");
        if let Some((_, layout)) = cache.iter().find(|(key, _)| *key == bits) {
            return Arc::clone(layout);
        }
        // `maxa[x]`: the largest set size `m ≤ max_set_len` whose
        // sharing rule `required(m) = max(ceil(threshold · m), 1)` is at
        // most `x` (0 when none is). `required` is non-decreasing, so
        // one forward sweep fills the whole table.
        let top = self.max_set_len as usize + PREFIX_ORDER - 1;
        let required = |m: usize| ((threshold * m as f64).ceil() as usize).max(1);
        let mut maxa = vec![0u32; top + 1];
        let mut m = 0usize;
        for (x, slot) in maxa.iter_mut().enumerate() {
            while m < self.max_set_len as usize && required(m + 1) <= x {
                m += 1;
            }
            *slot = m as u32;
        }
        let mut entries: Vec<(u32, std::cmp::Reverse<u32>, u32, u32, u32)> =
            Vec::with_capacity(self.postings.len());
        for id in 0..self.grams.len() {
            let (records, sizes, tails) = self.posting_list(id);
            for ((&record, &size), &tail) in records.iter().zip(sizes).zip(tails) {
                let cap = maxa[(tail as usize + PREFIX_ORDER - 1).min(top)];
                let ekey = if size <= cap { u32::MAX } else { cap };
                entries.push((id as u32, std::cmp::Reverse(ekey), record, size, tail));
            }
        }
        entries.sort_unstable();
        let mut layout = ThresholdLayout {
            offsets: self.posting_offsets.clone(),
            ekeys: Vec::with_capacity(entries.len()),
            records: Vec::with_capacity(entries.len()),
            sizes: Vec::with_capacity(entries.len()),
            tails: Vec::with_capacity(entries.len()),
        };
        for &(_, std::cmp::Reverse(ekey), record, size, tail) in &entries {
            layout.ekeys.push(ekey);
            layout.records.push(record);
            layout.sizes.push(size);
            layout.tails.push(tail);
        }
        let layout = Arc::new(layout);
        cache.push((bits, Arc::clone(&layout)));
        layout
    }

    /// Smallest per-record gram-set size (0 only on an empty index).
    pub(crate) fn min_set_len(&self) -> u32 {
        self.min_set_len
    }

    /// Largest per-record gram-set size.
    pub(crate) fn max_set_len(&self) -> u32 {
        self.max_set_len
    }

    /// The ids of every record whose key contains `gram`, ordered by
    /// (ascending set size, record id). The probe itself goes through
    /// [`posting_list`](Self::posting_list) and [`ThresholdLayout`] by
    /// gram id; this value-keyed view serves the inversion tests.
    #[cfg(test)]
    pub(crate) fn postings(&self, gram: u64) -> &[u32] {
        match self.grams.binary_search(&gram) {
            Ok(i) => self.posting_list(i).0,
            Err(_) => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::similarity::naive;
    use classilink_rdf::Term;
    use proptest::prelude::*;

    const PN: &str = "http://e.org/v#pn";

    /// Build two single-column stores from raw values and return the
    /// per-value token views for (store a, value i) × (store b, value j).
    fn single_value_stores(a: &str, b: &str) -> (RecordStore, RecordStore) {
        let mut ra = Record::new(Term::iri("http://e.org/a"));
        ra.add(PN, a);
        let mut rb = Record::new(Term::iri("http://e.org/b"));
        rb.add(PN, b);
        (
            RecordStore::from_records(&[ra]),
            RecordStore::from_records(&[rb]),
        )
    }

    fn kernels_vs_naive(a: &str, b: &str) {
        let (sa, sb) = single_value_stores(a, b);
        let (ia, ib) = (sa.token_index(), sb.token_index());
        let pid_a = sa.property(PN).unwrap();
        let pid_b = sb.property(PN).unwrap();
        let va = sa.value_list(0, pid_a);
        let vb = sb.value_list(0, pid_b);
        let ta = ia.value_tokens(pid_a.index(), va.value_index(0), va.get(0));
        let tb = ib.value_tokens(pid_b.index(), vb.value_index(0), vb.get(0));
        let mut scratch = SimScratch::new();
        assert_eq!(
            jaccard_tokens_kernel(&ta, &tb).to_bits(),
            naive::jaccard_tokens(a, b).to_bits(),
            "jaccard_tokens({a:?}, {b:?})"
        );
        assert_eq!(
            jaccard_bigrams_kernel(&ta, &tb).to_bits(),
            naive::jaccard_chars(a, b).to_bits(),
            "jaccard_chars({a:?}, {b:?})"
        );
        assert_eq!(
            dice_bigrams_kernel(&ta, &tb).to_bits(),
            naive::dice_bigrams(a, b).to_bits(),
            "dice_bigrams({a:?}, {b:?})"
        );
        assert_eq!(
            monge_elkan_kernel(&ta, &tb, &mut scratch).to_bits(),
            naive::monge_elkan(a, b).to_bits(),
            "monge_elkan({a:?}, {b:?})"
        );
    }

    #[test]
    fn kernel_matches_naive_on_pinned_cases() {
        for (a, b) in [
            ("fixed film resistor", "film capacitor"),
            ("CRCW0805-10K", "CRCW0805 10K"),
            ("", ""),
            ("a", "ab"),
            ("a", "A"),
            ("night", "nacht"),
            ("vishay fixed film", "vishai fixd film"),
            ("  ", "--"),
            ("ab", "ba"),
        ] {
            kernels_vs_naive(a, b);
        }
    }

    #[test]
    fn kernel_matches_naive_on_non_ascii() {
        for (a, b) in [
            ("café au lait", "cafe au lait"),
            ("résistance 10kΩ", "resistance 10kΩ"),
            ("😀😀 part", "😀 part"),
            ("e\u{301}tude", "étude"), // combining acute vs precomposed
            ("İstanbul", "istanbul"),  // lowercase expansion
            ("ß", "ss"),
            ("ß", "ß"),
        ] {
            kernels_vs_naive(a, b);
        }
    }

    #[test]
    fn index_is_built_once_and_reused() {
        let (sa, _) = single_value_stores("fixed film resistor", "x");
        let first = sa.token_index() as *const TokenIndex;
        let second = sa.token_index() as *const TokenIndex;
        assert_eq!(first, second);
        assert_eq!(sa.token_index().distinct_tokens(), 3);
    }

    #[test]
    fn full_text_tokens_cover_all_attributes() {
        let mut r = Record::new(Term::iri("http://e.org/a"));
        r.add(PN, "CRCW0805").add("http://e.org/v#mfr", "Vishay");
        let store = RecordStore::from_records(&[r]);
        let index = store.full_token_index();
        let full = index.full_tokens(0, store.full_text(0));
        assert_eq!(full.appear.len(), 2);
        assert_eq!(full.sorted.len(), 2);
    }

    mod key_index {
        use super::*;
        use crate::blocking::BlockingKey;
        use classilink_segment::{CharNGramSegmenter, Segmenter};

        fn store_of(values: &[&str]) -> RecordStore {
            let records: Vec<Record> = values
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let mut r = Record::new(Term::iri(format!("http://e.org/item/{i}")));
                    if !v.is_empty() || i % 2 == 0 {
                        r.add(PN, *v);
                    }
                    r
                })
                .collect();
            RecordStore::from_records(&records)
        }

        const VALUES: &[&str] = &[
            "CRCW0805-10K",
            "crcw0805 10k",
            "T83-A225",
            "",
            "İSTANBUL-42",
            "LM317",
            "x",
        ];

        #[test]
        fn keys_and_sort_values_match_the_key_side() {
            let store = store_of(VALUES);
            for prefix in [0, 3, 6] {
                let side = BlockingKey::shared(PN, prefix).external_side(&store);
                let index = KeyIndex::build(&store, &side);
                assert_eq!(index.len(), store.len());
                assert!(!index.is_empty());
                for r in 0..store.len() {
                    assert_eq!(index.key(r), side.key(&store, r), "record {r}");
                    assert_eq!(
                        index.sort_value(r),
                        side.sort_value(&store, r),
                        "record {r}"
                    );
                }
            }
        }

        #[test]
        fn records_with_key_is_the_exact_block() {
            let store = store_of(VALUES);
            let side = BlockingKey::shared(PN, 4).external_side(&store);
            let index = KeyIndex::build(&store, &side);
            for r in 0..store.len() {
                let probe = side.key(&store, r);
                let expected: Vec<u32> = (0..store.len() as u32)
                    .filter(|&o| side.key(&store, o as usize) == probe)
                    .collect();
                assert_eq!(index.records_with_key(&probe), expected, "key {probe:?}");
            }
            assert!(index.records_with_key("no-such-key").is_empty());
        }

        #[test]
        fn missing_property_yields_empty_keys() {
            let store = store_of(VALUES);
            let side = BlockingKey::shared("http://nowhere.org/v#x", 4).external_side(&store);
            assert_eq!(side.property(), None);
            let index = KeyIndex::build(&store, &side);
            for r in 0..store.len() {
                assert_eq!(index.key(r), "");
                assert_eq!(index.sort_value(r), "");
            }
            assert_eq!(index.records_with_key("").len(), store.len());
        }

        /// The packed `u64` key bigram sets replicate the segmenter's
        /// padded-bigram convention record by record.
        #[test]
        fn bigram_sets_match_the_padded_segmenter() {
            let store = store_of(VALUES);
            let segmenter = CharNGramSegmenter::padded_bigrams();
            let side = BlockingKey::shared(PN, 0).external_side(&store);
            let index = KeyIndex::build(&store, &side);
            let bigrams = index.bigram_index();
            for r in 0..store.len() {
                let mut expected: Vec<u64> = segmenter
                    .split_distinct(&side.key(&store, r))
                    .iter()
                    .map(|gram| {
                        let mut chars = gram.chars();
                        let (a, b) = (chars.next().unwrap(), chars.next().unwrap());
                        assert!(chars.next().is_none(), "bigram {gram:?} not 2 chars");
                        pack_bigram(a, b)
                    })
                    .collect();
                expected.sort_unstable();
                assert_eq!(bigrams.set(r), expected, "record {r}");
            }
        }

        #[test]
        fn postings_invert_the_sets() {
            let store = store_of(VALUES);
            let side = BlockingKey::shared(PN, 0).external_side(&store);
            let index = KeyIndex::build(&store, &side);
            let bigrams = index.bigram_index();
            for r in 0..store.len() {
                for &gram in bigrams.set(r) {
                    let postings = bigrams.postings(gram);
                    assert!(postings.contains(&(r as u32)), "record {r} gram {gram:#x}");
                }
            }
            // Posting lists are (ascending set size, record id)-sorted:
            // the late-position size cut's partition_point window.
            for id in 0..bigrams.gram_values().len() {
                let (records, sizes, tails) = bigrams.posting_list(id);
                assert_eq!(records.len(), bigrams.df(id) as usize, "gram id {id}");
                let by_size: Vec<(u32, u32)> =
                    sizes.iter().copied().zip(records.iter().copied()).collect();
                assert!(by_size.windows(2).all(|w| w[0] < w[1]), "gram id {id}");
                for ((&record, &size), &tail) in records.iter().zip(sizes).zip(tails) {
                    let record = record as usize;
                    assert_eq!(size as usize, bigrams.set(record).len(), "gram id {id}");
                    assert!(tail >= 1 && tail <= size, "gram id {id}");
                    assert_eq!(
                        bigrams.df_set(record)[(size - tail) as usize] as usize,
                        id,
                        "size − tail must point back at the gram"
                    );
                }
            }
            assert!(bigrams.postings(pack_bigram('\u{10FFFF}', 'q')).is_empty());
        }

        /// Every [`ThresholdLayout`] is an exact per-gram permutation of
        /// the base postings under the documented entry-key formula:
        /// `ekey` descending, `ekey = u32::MAX` when the record's own
        /// sharing rule fits its tail plus prefix slack, the largest
        /// fitting probe size otherwise — and the cache returns the
        /// same layout on a repeat request.
        #[test]
        fn threshold_layouts_permute_the_postings() {
            let store = store_of(VALUES);
            let side = BlockingKey::shared(PN, 0).external_side(&store);
            let index = KeyIndex::build(&store, &side);
            let bigrams = index.bigram_index();
            for threshold in [0.0, 0.3, 0.7, 1.0] {
                let layout = bigrams.threshold_layout(threshold);
                let required = |m: u32| ((threshold * m as f64).ceil() as u32).max(1);
                let maxa = |tail: u32| {
                    (1..=bigrams.max_set_len())
                        .take_while(|&m| (required(m) as usize) < tail as usize + PREFIX_ORDER)
                        .last()
                        .unwrap_or(0)
                };
                for id in 0..bigrams.gram_values().len() {
                    let (records, sizes, tails) = bigrams.posting_list(id);
                    let (ekeys, records2, sizes2, tails2) = layout.window(id);
                    assert!(
                        ekeys.windows(2).all(|w| w[0] >= w[1]),
                        "gram id {id}: entry keys must descend"
                    );
                    for ((&ekey, &size), &tail) in ekeys.iter().zip(sizes2).zip(tails2) {
                        let cap = maxa(tail);
                        let expect = if size <= cap { u32::MAX } else { cap };
                        assert_eq!(ekey, expect, "gram id {id} t={threshold}");
                    }
                    let entry_set = |r: &[u32], s: &[u32], t: &[u32]| {
                        let mut e: Vec<(u32, u32, u32)> = r
                            .iter()
                            .zip(s)
                            .zip(t)
                            .map(|((&r, &s), &t)| (r, s, t))
                            .collect();
                        e.sort_unstable();
                        e
                    };
                    assert_eq!(
                        entry_set(records, sizes, tails),
                        entry_set(records2, sizes2, tails2),
                        "gram id {id} t={threshold}: layout must permute the postings"
                    );
                }
                assert!(
                    Arc::ptr_eq(&layout, &bigrams.threshold_layout(threshold)),
                    "t={threshold}: repeat request must hit the cache"
                );
            }
        }

        /// The df-ordered per-record gram lists are a permutation of
        /// the value-sorted sets under one shared (df, gram id) order.
        #[test]
        fn df_sets_are_df_ordered_permutations() {
            let store = store_of(VALUES);
            let side = BlockingKey::shared(PN, 0).external_side(&store);
            let index = KeyIndex::build(&store, &side);
            let bigrams = index.bigram_index();
            let (mut min_seen, mut max_seen) = (u32::MAX, 0u32);
            for r in 0..store.len() {
                let df_set = bigrams.df_set(r);
                assert_eq!(df_set.len(), bigrams.set(r).len(), "record {r}");
                min_seen = min_seen.min(df_set.len() as u32);
                max_seen = max_seen.max(df_set.len() as u32);
                let mut values: Vec<u64> = df_set
                    .iter()
                    .map(|&id| bigrams.gram_values()[id as usize])
                    .collect();
                values.sort_unstable();
                assert_eq!(values, bigrams.set(r), "record {r}: not a permutation");
                assert!(
                    df_set
                        .windows(2)
                        .all(|w| (bigrams.df(w[0] as usize), w[0])
                            < (bigrams.df(w[1] as usize), w[1])),
                    "record {r}: df order violated"
                );
            }
            assert_eq!(bigrams.min_set_len(), min_seen);
            assert_eq!(bigrams.max_set_len(), max_seen);
        }
    }

    proptest! {
        /// The token-index kernels are bit-identical to the naive
        /// per-pair set construction on arbitrary printable input.
        #[test]
        fn prop_kernels_match_naive(a in "\\PC{0,20}", b in "\\PC{0,20}") {
            kernels_vs_naive(&a, &b);
        }

        /// And on ASCII part-number-like input (the common case).
        #[test]
        fn prop_kernels_match_naive_ascii(a in "[a-zA-Z0-9 -]{0,24}", b in "[a-zA-Z0-9 -]{0,24}") {
            kernels_vs_naive(&a, &b);
        }
    }
}
