//! Sharded catalogs: one logical record set split into per-shard
//! [`RecordStore`]s on a shared schema.
//!
//! The comparison phase of the linkage pipeline is embarrassingly
//! parallel over candidate pairs, but a single monolithic [`RecordStore`]
//! forces every worker through one allocation and makes incremental /
//! distributed growth impossible. A [`ShardedStore`] splits the catalog
//! into **contiguous, immutable shards** that all intern into one
//! [`SchemaInterner`], with three consequences:
//!
//! * **Global ids are stable.** Shard `s` holds the records
//!   `offsets[s] .. offsets[s + 1]` of the logical catalog, so the global
//!   id of shard-local record `i` is simply `offsets[s] + i` — the same
//!   index the record would have in the equivalent single store. Blockers
//!   run per shard and their `(external, local)` pairs are offset back to
//!   global ids by the router; results stay byte-identical to the
//!   single-store run.
//! * **One schema, one compile.** Because every shard shares the schema,
//!   a [`CompiledComparator`](crate::comparator::CompiledComparator) or a
//!   resolved [`KeySide`](crate::blocking::KeySide) is compiled **once**
//!   and is valid against every shard (and against sibling stores of the
//!   same scenario batch).
//! * **Routing is a binary search.** [`ShardedStore::locate`] maps a
//!   global id back to `(shard, local)` by binary-searching the offset
//!   table; [`ShardedStore::route`] splits a global candidate list into
//!   per-shard lists the same way. The pipeline itself no longer routes:
//!   blockers **stream** per-shard runs of shard-local pairs directly
//!   into the work-stealing task queues (see
//!   [`Blocker::stream_candidates`](crate::blocking::Blocker::stream_candidates)
//!   and
//!   [`LinkagePipeline::run_sharded`](crate::pipeline::LinkagePipeline::run_sharded));
//!   routing remains for legacy materialised candidate lists.
//!
//! Each shard, being a plain [`RecordStore`], also owns its lazily-built
//! [`TokenIndex`](crate::token_index::TokenIndex); when the compiled
//! comparator uses set-measure kernels the pipeline pre-warms every
//! shard's index before spawning workers (each of which owns one
//! [`SimScratch`](crate::similarity::SimScratch) for its whole run), so
//! the per-pair loop stays allocation-free across shard boundaries.
//!
//! ```text
//!  logical catalog (global ids)      0 1 2 3 4 5 6 7 8 9
//!                                    ├─────────┼───────┼─┤
//!  shard stores (local ids)          0 1 2 3 4│0 1 2 3│0│
//!                                    shard 0   shard 1 s2
//!  offsets = [0, 5, 9, 10]
//!
//!  blocker on (external, shard 1) emits (e, 2)
//!  router offsets it to            (e, offsets[1] + 2) = (e, 7)
//!  route() sends (e, 7) back to shard 1 as (e, 7 - offsets[1])
//! ```

use crate::blocking::CandidatePair;
use crate::error::{panic_payload, LinkError, LinkResult};
use crate::intern::{PropertyId, PropertyInterner, SchemaInterner};
use crate::record::Record;
use crate::store::{RecordStore, RecordStoreBuilder};
use classilink_rdf::{Graph, Term};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// An immutable catalog split into contiguous per-shard [`RecordStore`]s
/// sharing one property schema. See the [module docs](self).
///
/// Shards are held as `Arc`s: cloning the catalog — and, crucially,
/// **appending** to it ([`append_shards`](Self::append_shards)) —
/// shares the surviving shards instead of copying them, so their
/// lazily-built artifacts (token indexes, key indexes, bigram layouts)
/// ride along warm. An append therefore costs O(delta), not O(catalog).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedStore {
    /// The per-shard stores, in catalog order.
    shards: Vec<Arc<RecordStore>>,
    /// Global id of each shard's first record; `len = shards + 1`, the
    /// last entry is the total record count.
    offsets: Vec<usize>,
    /// The schema every shard was frozen with.
    schema: Arc<PropertyInterner>,
}

impl Default for ShardedStore {
    /// One empty shard (a derived `Default` would violate the "at least
    /// one shard, `offsets` seeded with 0" invariant every accessor
    /// relies on).
    fn default() -> Self {
        Self::builder().build()
    }
}

impl ShardedStore {
    /// An empty builder on a fresh schema.
    pub fn builder() -> ShardedStoreBuilder {
        ShardedStoreBuilder::default()
    }

    /// An empty builder interning into an existing shared schema (so the
    /// sharded catalog can agree on ids with sibling stores, e.g. the
    /// external side of a scenario).
    pub fn builder_with_schema(schema: SchemaInterner) -> ShardedStoreBuilder {
        ShardedStoreBuilder {
            schema,
            shards: Vec::new(),
            record_count: 0,
        }
    }

    /// Split a slice of records into `shard_count` contiguous shards
    /// (sizes as even as a contiguous split allows; trailing shards may
    /// be empty when `shard_count` exceeds the record count). Record `i`
    /// of the slice keeps global id `i`.
    pub fn from_records(records: &[Record], shard_count: usize) -> Self {
        Self::from_records_with_schema(records, shard_count, SchemaInterner::new())
    }

    /// [`from_records`](Self::from_records) on an existing shared schema.
    pub fn from_records_with_schema(
        records: &[Record],
        shard_count: usize,
        schema: SchemaInterner,
    ) -> Self {
        let shard_count = shard_count.max(1);
        let chunk = records.len().div_ceil(shard_count).max(1);
        let mut builder = Self::builder_with_schema(schema);
        for shard in records.chunks(chunk) {
            builder.begin_shard();
            for record in shard {
                builder.push(record);
            }
        }
        builder.pad_to(shard_count);
        builder.build()
    }

    /// Shard every subject of an RDF graph, one record per subject (the
    /// sharded equivalent of [`RecordStore::from_graph`]; subject order —
    /// and therefore global ids — match the single-store constructor).
    pub fn from_graph(graph: &Graph, shard_count: usize) -> Self {
        Self::from_graph_with_schema(graph, shard_count, SchemaInterner::new())
    }

    /// [`from_graph`](Self::from_graph) on an existing shared schema.
    pub fn from_graph_with_schema(
        graph: &Graph,
        shard_count: usize,
        schema: SchemaInterner,
    ) -> Self {
        let subjects = graph.subjects();
        let shard_count = shard_count.max(1);
        let chunk = subjects.len().div_ceil(shard_count).max(1);
        let mut builder = Self::builder_with_schema(schema);
        for shard in subjects.chunks(chunk) {
            builder.begin_shard();
            for subject in shard {
                builder.push_subject(graph, subject);
            }
        }
        builder.pad_to(shard_count);
        builder.build()
    }

    /// Number of shards (always ≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard stores, in catalog order (`Arc`s, so an epoch or a
    /// delta append can share them without re-columnarising).
    pub fn shards(&self) -> &[Arc<RecordStore>] {
        &self.shards
    }

    /// One shard's store.
    pub fn shard(&self, shard: usize) -> &RecordStore {
        &self.shards[shard]
    }

    /// Total number of records across all shards.
    pub fn len(&self) -> usize {
        *self
            .offsets
            .last()
            .expect("offsets always has a last entry")
    }

    /// `true` when no shard holds any record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shared schema every shard was frozen with.
    pub fn schema(&self) -> &PropertyInterner {
        &self.schema
    }

    /// The interned id of a property IRI, valid for **every** shard.
    pub fn property(&self, iri: &str) -> Option<PropertyId> {
        self.schema.get(iri)
    }

    /// Global id of `shard`'s first record.
    pub fn offset(&self, shard: usize) -> usize {
        self.offsets[shard]
    }

    /// Map a global record id to `(shard, shard-local id)`.
    ///
    /// Ids at or beyond [`len`](Self::len) are mapped to the last shard
    /// with an out-of-range local id (the comparison phase skips them,
    /// mirroring the single-store pipeline's bounds check).
    pub fn locate(&self, global: usize) -> (usize, usize) {
        let shard = self
            .offsets
            .partition_point(|&offset| offset <= global)
            .saturating_sub(1)
            .min(self.shards.len() - 1);
        (shard, global - self.offsets[shard])
    }

    /// Offset a shard-local record id back to its global id (the inverse
    /// of [`locate`](Self::locate)).
    pub fn global(&self, shard: usize, local: usize) -> usize {
        self.offsets[shard] + local
    }

    /// The item identifier of the record with this global id.
    pub fn id(&self, global: usize) -> &Term {
        let (shard, local) = self.locate(global);
        self.shards[shard].id(local)
    }

    /// The global id of item `id`, if any shard holds it.
    pub fn index_of(&self, id: &Term) -> Option<usize> {
        self.shards
            .iter()
            .zip(&self.offsets)
            .find_map(|(shard, offset)| Some(offset + shard.index_of(id)?))
    }

    /// Split a global candidate list into per-shard lists of
    /// **shard-local** pairs — the task queues of the work-stealing
    /// comparison phase. `route(pairs)[s]` preserves the relative order
    /// of `pairs` within shard `s`.
    pub fn route(&self, pairs: &[CandidatePair]) -> Vec<Vec<CandidatePair>> {
        let mut routed = vec![Vec::new(); self.shard_count()];
        for &(e, l) in pairs {
            let (shard, local) = self.locate(l);
            routed[shard].push((e, local));
        }
        routed
    }

    /// Concatenate the shards back into one monolithic store (global ids
    /// become plain indexes). Mostly useful for tests and for feeding
    /// APIs that predate sharding; costs a full re-columnarisation.
    pub fn to_store(&self) -> RecordStore {
        let mut builder = RecordStore::builder();
        for shard in &self.shards {
            for record in shard.to_records() {
                builder.push(&record);
            }
        }
        builder.build()
    }

    /// Reassemble a catalog from already-built shards — the snapshot
    /// loader's constructor. Every shard must have been built on (a
    /// clone of) `schema`; the offset table is re-derived from the shard
    /// lengths, so the result is structurally identical to the catalog
    /// that was persisted.
    ///
    /// # Panics
    /// Panics when `shards` is empty (a catalog always has at least one
    /// shard — the loader rejects a zero-shard manifest as corrupt
    /// before calling this).
    pub(crate) fn from_persisted_shards(
        shards: Vec<Arc<RecordStore>>,
        schema: Arc<PropertyInterner>,
    ) -> ShardedStore {
        assert!(!shards.is_empty(), "a catalog has at least one shard");
        let mut offsets = Vec::with_capacity(shards.len() + 1);
        offsets.push(0);
        for store in &shards {
            offsets.push(offsets.last().expect("non-empty") + store.len());
        }
        ShardedStore {
            shards,
            offsets,
            schema,
        }
    }

    /// An empty shard builder whose schema **continues** this catalog's:
    /// every property keeps its id, new properties extend the sequence.
    /// Columnarise a delta batch into it (directly, or through a
    /// [`FeedIngest`](crate::ingest::FeedIngest) built on the seeded
    /// schema) and publish with [`append_shards`](Self::append_shards).
    pub fn delta_builder(&self) -> ShardedStoreBuilder {
        Self::builder_with_schema(SchemaInterner::seeded(&self.schema))
    }

    /// Append a delta batch as new shards — the incremental growth path.
    ///
    /// The surviving shards are **`Arc`-shared**, not rebuilt: their
    /// warmed token/key/bigram artifacts carry over, so the append costs
    /// O(delta records), however large the catalog. Records of the delta
    /// get the global ids `self.len()..`; the result is equal to a full
    /// rebuild over the concatenated record sequence with the same shard
    /// boundaries. `delta` must come from [`delta_builder`](Self::delta_builder)
    /// (or a schema seeded from this catalog) so ids agree.
    ///
    /// Panics on a contained fault — the fault-tolerant entry point is
    /// [`try_append_shards`](Self::try_append_shards).
    pub fn append_shards(&self, delta: ShardedStoreBuilder) -> ShardedStore {
        self.try_append_shards(delta)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`append_shards`](Self::append_shards): a panic while
    /// columnarising a delta shard surfaces as
    /// [`LinkError::ShardBuildPanicked`] and `self` is untouched —
    /// nothing is half-appended.
    pub fn try_append_shards(&self, delta: ShardedStoreBuilder) -> LinkResult<ShardedStore> {
        // Models a fault at the append boundary, before any delta shard
        // columnarises.
        fail::fail_point!("shard::append", |arg: Option<String>| {
            Err(LinkError::injected("shard::append", arg))
        });
        let delta = delta.try_build()?;
        // Schema continuation: the catalog's table must be a prefix of
        // the delta's, id for id — guaranteed by `delta_builder`, and
        // cheap to verify (property counts are tiny).
        assert!(
            self.schema.len() <= delta.schema.len()
                && self
                    .schema
                    .iter()
                    .zip(delta.schema.iter())
                    .all(|((ia, na), (ib, nb))| ia == ib && na == nb),
            "delta schema does not continue the catalog schema; \
             build the delta on ShardedStore::delta_builder()"
        );
        let mut shards = self.shards.clone();
        shards.extend(delta.shards.iter().cloned());
        let mut offsets = self.offsets.clone();
        offsets.pop();
        offsets.extend(delta.offsets.iter().map(|o| o + self.len()));
        Ok(ShardedStore {
            shards,
            offsets,
            // The delta snapshot extends the catalog's table, so it is
            // the appended catalog's schema. Old shards keep their own
            // (prefix) Arc: ids agree wherever both define them, and a
            // post-append property simply resolves to empty columns on
            // an old shard.
            schema: delta.schema,
        })
    }
}

/// A borrowed view of the local side of a blocking run as one or more
/// contiguous shards — the input of the streaming
/// [`Blocker::stream_candidates`](crate::blocking::Blocker::stream_candidates)
/// API.
///
/// The two constructors cover both pipeline entry points: a monolithic
/// [`RecordStore`] is *one* shard at offset 0
/// ([`LocalShards::single`]), and a [`ShardedStore`] contributes its
/// shard list, offset table and shared schema (`From<&ShardedStore>`).
/// Blockers iterate [`iter`](Self::iter) and emit **shard-local**
/// ids; [`offset`](Self::offset) recovers global ids when a blocker
/// (sorted neighbourhood) needs the global ordering during blocking.
#[derive(Debug, Clone, Copy)]
pub struct LocalShards<'a>(ShardsInner<'a>);

#[derive(Debug, Clone, Copy)]
enum ShardsInner<'a> {
    Single(&'a RecordStore),
    Sharded(&'a ShardedStore),
}

impl<'a> LocalShards<'a> {
    /// View a monolithic store as a single shard at offset 0.
    pub fn single(store: &'a RecordStore) -> Self {
        LocalShards(ShardsInner::Single(store))
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        match self.0 {
            ShardsInner::Single(_) => 1,
            ShardsInner::Sharded(s) => s.shard_count(),
        }
    }

    /// The per-shard stores, in catalog order.
    pub fn iter(self) -> impl Iterator<Item = &'a RecordStore> {
        (0..self.shard_count()).map(move |s| self.shard(s))
    }

    /// One shard's store.
    pub fn shard(&self, shard: usize) -> &'a RecordStore {
        match self.0 {
            ShardsInner::Single(store) => {
                assert_eq!(shard, 0, "single-store view has exactly one shard");
                store
            }
            ShardsInner::Sharded(s) => s.shard(shard),
        }
    }

    /// Global id of `shard`'s first record.
    pub fn offset(&self, shard: usize) -> usize {
        match self.0 {
            ShardsInner::Single(_) => 0,
            ShardsInner::Sharded(s) => s.offset(shard),
        }
    }

    /// Total number of records across all shards.
    pub fn len(&self) -> usize {
        match self.0 {
            ShardsInner::Single(store) => store.len(),
            ShardsInner::Sharded(s) => s.len(),
        }
    }

    /// `true` when no shard holds any record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The schema the local side resolves property IRIs against (shared
    /// by every shard of a sharded catalog).
    pub fn schema(&self) -> &'a PropertyInterner {
        match self.0 {
            ShardsInner::Single(store) => store.interner(),
            ShardsInner::Sharded(s) => s.schema(),
        }
    }

    /// The backing [`ShardedStore`], when this view was built from one.
    /// The default [`Blocker::stream_candidates`](crate::blocking::Blocker::stream_candidates)
    /// uses it to adapt legacy `candidate_pairs_sharded` overrides.
    pub fn sharded(&self) -> Option<&'a ShardedStore> {
        match self.0 {
            ShardsInner::Single(_) => None,
            ShardsInner::Sharded(s) => Some(s),
        }
    }
}

impl<'a> From<&'a ShardedStore> for LocalShards<'a> {
    fn from(store: &'a ShardedStore) -> Self {
        LocalShards(ShardsInner::Sharded(store))
    }
}

/// Incremental [`ShardedStore`] construction: open shards with
/// [`begin_shard`](Self::begin_shard), push records into the current
/// shard, then [`build`](Self::build).
#[derive(Debug, Clone, Default)]
pub struct ShardedStoreBuilder {
    schema: SchemaInterner,
    shards: Vec<RecordStoreBuilder>,
    record_count: usize,
}

impl ShardedStoreBuilder {
    /// Open a new (empty) shard; subsequent pushes go into it. Returns
    /// the shard's index.
    pub fn begin_shard(&mut self) -> usize {
        self.shards
            .push(RecordStore::builder_with_schema(self.schema.clone()));
        self.shards.len() - 1
    }

    /// Append empty shards until there are at least `shard_count`.
    pub fn pad_to(&mut self, shard_count: usize) {
        while self.shards.len() < shard_count {
            self.begin_shard();
        }
    }

    fn current(&mut self) -> &mut RecordStoreBuilder {
        if self.shards.is_empty() {
            self.begin_shard();
        }
        self.shards
            .last_mut()
            .expect("begin_shard pushed a builder")
    }

    /// Append one [`Record`] to the current shard; returns its global id.
    pub fn push(&mut self, record: &Record) -> usize {
        self.current().push(record);
        self.record_count += 1;
        self.record_count - 1
    }

    /// Append one record from borrowed facts (see
    /// [`RecordStoreBuilder::push_record`]); returns its global id.
    pub fn push_record<'f, I, F>(&mut self, id: Term, facts: F) -> usize
    where
        I: Iterator<Item = (&'f str, &'f str)>,
        F: FnOnce() -> I,
    {
        self.current().push_record(id, facts);
        self.record_count += 1;
        self.record_count - 1
    }

    /// Append the record of one graph subject; returns its global id.
    pub fn push_subject(&mut self, graph: &Graph, subject: &Term) -> usize {
        self.current().push_subject(graph, subject);
        self.record_count += 1;
        self.record_count - 1
    }

    /// Number of records pushed so far (across all shards).
    pub fn len(&self) -> usize {
        self.record_count
    }

    /// `true` when no record has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.record_count == 0
    }

    /// Freeze every shard, all sharing one schema snapshot.
    ///
    /// Shards columnarise **concurrently**: interning is already done
    /// (the mutex-guarded [`SchemaInterner`] was only needed while
    /// records were pushed), so each shard's `finish` — column
    /// assembly, full-text precompute, id index — is independent work,
    /// fanned out under `std::thread::scope` across the machine's
    /// cores. Per-shard construction is deterministic, so the result is
    /// byte-identical to a sequential build (asserted by
    /// `parallel_build_is_byte_identical_to_sequential`).
    pub fn build(self) -> ShardedStore {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build`](Self::build): a panic while columnarising one
    /// shard is contained to that shard's worker and reported as
    /// [`LinkError::ShardBuildPanicked`]; the remaining workers drain
    /// the other shards before the build is abandoned.
    pub fn try_build(self) -> LinkResult<ShardedStore> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.try_build_with_workers(workers)
    }

    /// [`build`](Self::build) with an explicit worker-thread cap
    /// (`1` = sequential; the cap is also clamped to the shard count).
    /// Panics on a contained fault — the fault-tolerant entry point is
    /// [`try_build_with_workers`](Self::try_build_with_workers).
    pub fn build_with_workers(self, workers: usize) -> ShardedStore {
        self.try_build_with_workers(workers)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`build_with_workers`](Self::build_with_workers); see
    /// [`try_build`](Self::try_build) for the containment contract. On
    /// `Err` the error names the **lowest** faulted shard index,
    /// regardless of worker scheduling.
    pub fn try_build_with_workers(mut self, workers: usize) -> LinkResult<ShardedStore> {
        if self.shards.is_empty() {
            self.begin_shard();
        }
        // One snapshot, one `Arc`: taken after every push, so every
        // shard sees the full schema regardless of which shard interned
        // a property first.
        let schema = Arc::new(self.schema.snapshot());
        let shard_count = self.shards.len();
        let workers = workers.clamp(1, shard_count);
        let columnarise = |shard: usize, builder: RecordStoreBuilder| {
            catch_unwind(AssertUnwindSafe(|| {
                fail::fail_point!("shard::columnarise");
                builder.finish(schema.clone())
            }))
            .map_err(|payload| LinkError::ShardBuildPanicked {
                shard,
                payload: panic_payload(payload),
            })
        };
        let shards: Vec<Arc<RecordStore>> = if workers <= 1 {
            let mut built = Vec::with_capacity(shard_count);
            for (shard, builder) in self.shards.into_iter().enumerate() {
                built.push(Arc::new(columnarise(shard, builder)?));
            }
            built
        } else {
            // Claim shards off one atomic counter: big and small shards
            // interleave across workers without any up-front partition.
            let slots: Vec<std::sync::Mutex<Option<RecordStoreBuilder>>> = self
                .shards
                .into_iter()
                .map(|builder| std::sync::Mutex::new(Some(builder)))
                .collect();
            let results: Vec<std::sync::OnceLock<RecordStore>> = (0..shard_count)
                .map(|_| std::sync::OnceLock::new())
                .collect();
            // The lowest faulted shard (deterministic regardless of
            // which worker hit it, or when).
            let fault: std::sync::Mutex<Option<LinkError>> = std::sync::Mutex::new(None);
            let next = std::sync::atomic::AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let shard = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if shard >= shard_count {
                            break;
                        }
                        let builder = slots[shard]
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .take()
                            .expect("every shard slot is claimed exactly once");
                        // A faulted shard doesn't stop this worker: keep
                        // claiming so every other shard still finishes,
                        // then report the fault after the scope joins.
                        match columnarise(shard, builder) {
                            Ok(store) => {
                                let built = results[shard].set(store);
                                assert!(built.is_ok(), "shard {shard} built twice");
                            }
                            Err(error) => {
                                let mut fault = fault
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                                let replace = match &*fault {
                                    Some(LinkError::ShardBuildPanicked {
                                        shard: recorded, ..
                                    }) => shard < *recorded,
                                    _ => true,
                                };
                                if replace {
                                    *fault = Some(error);
                                }
                            }
                        }
                    });
                }
            });
            if let Some(error) = fault
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
            {
                return Err(error);
            }
            results
                .into_iter()
                .map(|slot| Arc::new(slot.into_inner().expect("every claimed shard was built")))
                .collect()
        };
        let mut offsets = Vec::with_capacity(shard_count + 1);
        offsets.push(0);
        for store in &shards {
            offsets.push(offsets.last().expect("non-empty") + store.len());
        }
        Ok(ShardedStore {
            shards,
            offsets,
            schema,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PN: &str = "http://e.org/v#pn";
    const MFR: &str = "http://e.org/v#mfr";

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let mut r = Record::new(Term::iri(format!("http://e.org/item/{i}")));
                r.add(PN, format!("PN-{i:04}"));
                if i % 2 == 0 {
                    r.add(MFR, "Vishay");
                }
                r
            })
            .collect()
    }

    #[test]
    fn contiguous_split_preserves_global_ids() {
        let records = records(10);
        let sharded = ShardedStore::from_records(&records, 3);
        let single = RecordStore::from_records(&records);
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.len(), single.len());
        for global in 0..single.len() {
            assert_eq!(sharded.id(global), single.id(global));
            let (shard, local) = sharded.locate(global);
            assert_eq!(sharded.global(shard, local), global);
            assert_eq!(sharded.shard(shard).id(local), single.id(global));
        }
    }

    #[test]
    fn shards_share_one_schema() {
        let sharded = ShardedStore::from_records(&records(7), 3);
        let pn = sharded.property(PN).expect("pn interned");
        for shard in sharded.shards() {
            assert_eq!(shard.property(PN), Some(pn));
            assert!(std::ptr::eq(shard.interner(), sharded.schema()));
        }
        // A property present in only some shards still resolves — to
        // empty values — on the others.
        let mfr = sharded.property(MFR).expect("mfr interned");
        for shard in sharded.shards() {
            for record in 0..shard.len() {
                let _ = shard.values(record, mfr).count(); // must not panic
            }
        }
    }

    #[test]
    fn uneven_and_empty_shards() {
        // 5 records over 4 shards: contiguous split gives 2+2+1 and one
        // padded empty shard.
        let sharded = ShardedStore::from_records(&records(5), 4);
        assert_eq!(sharded.shard_count(), 4);
        let sizes: Vec<usize> = sharded.shards().iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![2, 2, 1, 0]);
        assert_eq!(sharded.len(), 5);
        // Empty input: one (or shard_count) empty shards, len 0.
        let empty = ShardedStore::from_records(&[], 3);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn locate_clamps_out_of_range_ids() {
        let sharded = ShardedStore::from_records(&records(5), 2);
        let (shard, local) = sharded.locate(100);
        assert_eq!(shard, sharded.shard_count() - 1);
        assert!(local >= sharded.shard(shard).len());
    }

    #[test]
    fn index_of_searches_all_shards() {
        let records = records(6);
        let sharded = ShardedStore::from_records(&records, 3);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(sharded.index_of(&record.id), Some(i));
        }
        assert_eq!(sharded.index_of(&Term::iri("http://e.org/nowhere")), None);
    }

    #[test]
    fn route_splits_and_localises_pairs() {
        let sharded = ShardedStore::from_records(&records(6), 3); // shards of 2
        let pairs = vec![(0, 0), (1, 3), (2, 5), (3, 1)];
        let routed = sharded.route(&pairs);
        assert_eq!(routed[0], vec![(0, 0), (3, 1)]);
        assert_eq!(routed[1], vec![(1, 1)]);
        assert_eq!(routed[2], vec![(2, 1)]);
    }

    #[test]
    fn from_graph_matches_single_store_order() {
        let mut g = Graph::new();
        for i in 0..5 {
            g.insert(classilink_rdf::Triple::literal(
                format!("http://e.org/item/{i}"),
                PN,
                format!("PN-{i}"),
            ));
        }
        let sharded = ShardedStore::from_graph(&g, 2);
        let single = RecordStore::from_graph(&g);
        assert_eq!(sharded.len(), single.len());
        for global in 0..single.len() {
            assert_eq!(sharded.id(global), single.id(global));
        }
        assert_eq!(sharded.to_store().to_records(), single.to_records());
    }

    #[test]
    fn builder_mixes_push_styles() {
        let mut builder = ShardedStore::builder();
        // Pushing before begin_shard auto-opens shard 0.
        let first = builder.push(&records(1)[0]);
        assert_eq!(first, 0);
        builder.begin_shard();
        let second = builder.push_record(Term::iri("http://e.org/item/x"), || {
            [(PN, "PN-X")].into_iter()
        });
        assert_eq!(second, 1);
        assert_eq!(builder.len(), 2);
        let store = builder.build();
        assert_eq!(store.shard_count(), 2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.locate(1), (1, 0));
    }

    #[test]
    fn local_shards_views_agree_with_their_backing() {
        let records = records(7);
        let single_store = RecordStore::from_records(&records);
        let single = LocalShards::single(&single_store);
        assert_eq!(single.shard_count(), 1);
        assert_eq!(single.len(), 7);
        assert!(!single.is_empty());
        assert_eq!(single.offset(0), 0);
        assert!(std::ptr::eq(single.shard(0), &single_store));
        assert!(std::ptr::eq(single.schema(), single_store.interner()));
        assert!(single.sharded().is_none());

        let sharded_store = ShardedStore::from_records(&records, 3);
        let sharded = LocalShards::from(&sharded_store);
        assert_eq!(sharded.shard_count(), 3);
        assert_eq!(sharded.len(), 7);
        assert_eq!(sharded.iter().count(), 3);
        for s in 0..3 {
            assert_eq!(sharded.offset(s), sharded_store.offset(s));
            assert!(std::ptr::eq(sharded.shard(s), sharded_store.shard(s)));
        }
        assert!(std::ptr::eq(sharded.schema(), sharded_store.schema()));
        assert!(sharded.sharded().is_some());

        let empty_store = RecordStore::from_records(&[]);
        assert!(LocalShards::single(&empty_store).is_empty());
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        // Uneven shard sizes, a property present in only some shards,
        // multi-valued attributes — the parallel columnarisation must
        // reproduce the sequential build exactly (PartialEq on
        // ShardedStore is structural over all stored data).
        let records = records(23);
        let mut sequential = ShardedStore::builder();
        let mut parallel = ShardedStore::builder();
        for (i, record) in records.iter().enumerate() {
            if i % 5 == 0 {
                sequential.begin_shard();
                parallel.begin_shard();
            }
            sequential.push(record);
            parallel.push(record);
        }
        let sequential = sequential.build_with_workers(1);
        for workers in [2, 4, 16] {
            let built = parallel.clone().build_with_workers(workers);
            assert_eq!(sequential, built, "{workers} workers");
        }
        // The default build (auto worker count) agrees too, and so do
        // the global ids.
        let default_build = parallel.build();
        assert_eq!(sequential, default_build);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(default_build.id(i), &record.id);
        }
    }

    #[test]
    fn append_shards_matches_a_full_rebuild_and_shares_surviving_shards() {
        let all = records(10);
        let (base_records, delta_records) = all.split_at(6);
        let base = ShardedStore::from_records(base_records, 2);
        // Warm a cache on a surviving shard so we can observe it ride
        // along (token_index is a OnceLock: warm iff already built).
        base.shard(0).token_index();

        let mut delta = base.delta_builder();
        for (i, record) in delta_records.iter().enumerate() {
            if i % 2 == 0 {
                delta.begin_shard();
            }
            delta.push(record);
        }
        let appended = base.append_shards(delta);

        // Equal to a full rebuild over the concatenated records with the
        // same shard boundaries (2 base shards of 3, 2 delta shards of 2).
        let mut full = ShardedStore::builder();
        for (i, record) in all.iter().enumerate() {
            if i == 0 || i == 3 || i == 6 || i == 8 {
                full.begin_shard();
            }
            full.push(record);
        }
        let full = full.build();
        assert_eq!(appended.shard_count(), 4);
        assert_eq!(appended.len(), 10);
        assert_eq!(appended, full);
        for (i, record) in all.iter().enumerate() {
            assert_eq!(appended.id(i), &record.id);
            assert_eq!(appended.index_of(&record.id), Some(i));
        }

        // Surviving shards are the same allocations, not copies — the
        // warmed artifacts carried over.
        for s in 0..base.shard_count() {
            assert!(Arc::ptr_eq(&base.shards()[s], &appended.shards()[s]));
        }
        // The base catalog itself is untouched.
        assert_eq!(base.len(), 6);
        assert_eq!(base.shard_count(), 2);
    }

    #[test]
    fn appended_schema_extends_the_base_prefix() {
        let base = ShardedStore::from_records(&records(4), 2);
        let mut delta = base.delta_builder();
        delta.push_record(Term::iri("http://e.org/item/new"), || {
            [(PN, "PN-NEW"), ("http://e.org/v#colour", "red")].into_iter()
        });
        let appended = base.append_shards(delta);
        // Old ids survive verbatim; the new property extends the table.
        assert_eq!(appended.property(PN), base.property(PN));
        assert_eq!(appended.property(MFR), base.property(MFR));
        let colour = appended
            .property("http://e.org/v#colour")
            .expect("delta property interned");
        assert_eq!(colour.index(), base.schema().len());
        // A post-append property resolves to empty columns on old shards.
        for record in 0..base.shard(0).len() {
            assert_eq!(appended.shard(0).values(record, colour).count(), 0);
        }
        // ...and to its values on the delta shard.
        let (shard, local) = appended.locate(4);
        let values: Vec<&str> = appended.shard(shard).values(local, colour).collect();
        assert_eq!(values, vec!["red"]);
    }

    #[test]
    #[should_panic(expected = "does not continue the catalog schema")]
    fn append_rejects_a_foreign_schema() {
        let base = ShardedStore::from_records(&records(4), 2);
        // A fresh schema interning an unrelated property at id 0: the
        // ids disagree with the base table, so this is no continuation.
        let mut delta = ShardedStore::builder();
        delta.push_record(Term::iri("http://e.org/item/f"), || {
            [("http://e.org/v#colour", "red"), (PN, "PN-F")].into_iter()
        });
        base.append_shards(delta);
    }

    #[test]
    fn empty_builder_builds_one_empty_shard() {
        let store = ShardedStore::builder().build();
        assert_eq!(store.shard_count(), 1);
        assert!(store.is_empty());
        assert!(store.route(&[]).iter().all(Vec::is_empty));
    }

    #[test]
    fn default_upholds_the_shard_invariants() {
        let store = ShardedStore::default();
        assert_eq!(store.shard_count(), 1);
        assert!(store.is_empty());
        assert_eq!(store.len(), 0);
        // locate on a (necessarily out-of-range) id clamps instead of
        // underflowing.
        let (shard, local) = store.locate(0);
        assert_eq!(shard, 0);
        assert_eq!(local, 0);
        assert_eq!(store, ShardedStore::builder().build());
    }
}
