//! A small generic inverted index.
//!
//! Bigram blocking historically built its gram → records index here;
//! it now probes the packed posting lists precomputed by the
//! store-level [`KeyIndex`](crate::token_index::KeyIndex). The generic
//! index remains part of the public API for external consumers that
//! need an incremental string-keyed posting structure.

use std::collections::HashMap;

/// Maps string keys to **sorted** posting lists of values (e.g. bigram →
/// record ids). Posting lists are kept sorted and duplicate-free by
/// [`insert`](InvertedIndex::insert).
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex<T> {
    postings: HashMap<String, Vec<T>>,
}

impl<T: Ord + Clone> InvertedIndex<T> {
    /// An empty index.
    pub fn new() -> Self {
        InvertedIndex {
            postings: HashMap::new(),
        }
    }

    /// Add `value` to the posting list of `key` (duplicates within one key
    /// are ignored).
    ///
    /// Values inserted in non-decreasing order — the natural pattern when
    /// scanning records by index — take an O(1) last-element check;
    /// out-of-order values fall back to a binary search so the list stays
    /// sorted without the former O(n) `contains` scan per insert.
    pub fn insert(&mut self, key: impl Into<String>, value: T) {
        let list = self.postings.entry(key.into()).or_default();
        match list.last() {
            // Fast path: monotone insertion streams append.
            Some(last) if *last < value => list.push(value),
            Some(last) if *last == value => {}
            None => list.push(value),
            Some(_) => {
                if let Err(position) = list.binary_search(&value) {
                    list.insert(position, value);
                }
            }
        }
    }

    /// The posting list of `key`, sorted ascending (empty slice when
    /// absent).
    pub fn get(&self, key: &str) -> &[T] {
        self.postings.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.postings.len()
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        self.postings.values().map(Vec::len).sum()
    }

    /// `true` when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Iterate over `(key, posting list)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[T])> {
        self.postings
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut idx: InvertedIndex<usize> = InvertedIndex::new();
        assert!(idx.is_empty());
        idx.insert("cr", 0);
        idx.insert("cr", 1);
        idx.insert("cr", 0); // duplicate ignored
        idx.insert("t8", 2);
        assert_eq!(idx.get("cr"), &[0, 1]);
        assert_eq!(idx.get("t8"), &[2]);
        assert!(idx.get("zz").is_empty());
        assert_eq!(idx.key_count(), 2);
        assert_eq!(idx.posting_count(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn out_of_order_inserts_keep_lists_sorted_and_deduped() {
        let mut idx: InvertedIndex<usize> = InvertedIndex::new();
        for v in [5, 2, 9, 2, 5, 0, 9, 7] {
            idx.insert("k", v);
        }
        assert_eq!(idx.get("k"), &[0, 2, 5, 7, 9]);
    }

    #[test]
    fn monotone_inserts_dedup_adjacent_duplicates() {
        let mut idx: InvertedIndex<usize> = InvertedIndex::new();
        for record in 0..4 {
            // A record can emit the same key more than once (repeated
            // bigram); only one posting per record must survive.
            idx.insert("aa", record);
            idx.insert("aa", record);
        }
        assert_eq!(idx.get("aa"), &[0, 1, 2, 3]);
    }

    #[test]
    fn iteration_covers_all_keys() {
        let mut idx: InvertedIndex<&'static str> = InvertedIndex::new();
        idx.insert("a", "x");
        idx.insert("b", "y");
        let keys: std::collections::HashSet<&str> = idx.iter().map(|(k, _)| k).collect();
        assert_eq!(keys.len(), 2);
    }
}
