//! A small generic inverted index used by the blocking methods.

use std::collections::HashMap;

/// Maps string keys to posting lists of values (e.g. bigram → record ids).
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex<T> {
    postings: HashMap<String, Vec<T>>,
}

impl<T: PartialEq + Clone> InvertedIndex<T> {
    /// An empty index.
    pub fn new() -> Self {
        InvertedIndex {
            postings: HashMap::new(),
        }
    }

    /// Add `value` to the posting list of `key` (duplicates within one key
    /// are ignored).
    pub fn insert(&mut self, key: impl Into<String>, value: T) {
        let list = self.postings.entry(key.into()).or_default();
        if !list.contains(&value) {
            list.push(value);
        }
    }

    /// The posting list of `key` (empty slice when absent).
    pub fn get(&self, key: &str) -> &[T] {
        self.postings.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.postings.len()
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        self.postings.values().map(Vec::len).sum()
    }

    /// `true` when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// Iterate over `(key, posting list)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[T])> {
        self.postings.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut idx: InvertedIndex<usize> = InvertedIndex::new();
        assert!(idx.is_empty());
        idx.insert("cr", 0);
        idx.insert("cr", 1);
        idx.insert("cr", 0); // duplicate ignored
        idx.insert("t8", 2);
        assert_eq!(idx.get("cr"), &[0, 1]);
        assert_eq!(idx.get("t8"), &[2]);
        assert!(idx.get("zz").is_empty());
        assert_eq!(idx.key_count(), 2);
        assert_eq!(idx.posting_count(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn iteration_covers_all_keys() {
        let mut idx: InvertedIndex<&'static str> = InvertedIndex::new();
        idx.insert("a", "x");
        idx.insert("b", "y");
        let keys: std::collections::HashSet<&str> = idx.iter().map(|(k, _)| k).collect();
        assert_eq!(keys.len(), 2);
    }
}
