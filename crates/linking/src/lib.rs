//! # classilink-linking
//!
//! The data-linking substrate of the `classilink` workspace (reproduction of
//! *"Classification Rule Learning for Data Linking"*, Pernelle & Saïs,
//! LWDM @ EDBT 2012).
//!
//! The paper's contribution is a way to *reduce the linking space*; this
//! crate provides the rest of the pipeline a linking system needs, and the
//! baselines from the related-work section so the reduction can be compared
//! head-to-head:
//!
//! * [`similarity`] — string similarity measures (Levenshtein,
//!   Damerau-Levenshtein, Jaro, Jaro-Winkler, Jaccard, Dice, Monge-Elkan,
//!   TF-IDF cosine), each with an allocation-free scratch-buffer kernel
//!   variant (`*_with(scratch, a, b)`, see [`similarity::SimScratch`]).
//! * [`token_index`] — store-level token/bigram precomputation: each
//!   attribute value is tokenised once, so the set-based measures run as
//!   sorted-merge intersections in the per-pair loop. The blocking-side
//!   analogue, [`token_index::KeyIndex`], caches every record's
//!   normalised blocking key (and packed key bigrams) per recipe.
//! * [`record`] — flat attribute/value records extracted from RDF items
//!   (the builder-side representation).
//! * [`intern`] / [`store`] — the execution-side representation: property
//!   IRIs interned to dense ids, attribute values in contiguous
//!   per-property columns, records as plain indexes. Everything below
//!   runs on [`RecordStore`], so the per-pair hot path never hashes an
//!   IRI string or clones a term.
//! * [`comparator`] — weighted record comparison with Match / Possible /
//!   NonMatch decisions, compiled to property ids per store pair.
//! * [`blocking`] — the candidate-pair generation strategies: cartesian,
//!   standard key blocking, sorted neighbourhood, bi-gram indexing,
//!   class-disjointness filtering and the rule-based blocker that wraps the
//!   paper's classifier. All of them stream per-shard candidate runs
//!   ([`blocking::Blocker::stream_candidates`])
//!   straight into the pipeline's task queues; the materialising
//!   `candidate_pairs*` APIs remain as thin adapters.
//! * [`index`] — a small generic inverted index (kept for external
//!   consumers; bigram blocking now probes the packed posting lists of
//!   the [`token_index::KeyIndex`]).
//! * [`ingest`] — streaming ingestion: the incremental RDF parsers feed
//!   a subject-grouping adapter that columnarises straight into shard
//!   builders with bounded transient memory; every `from_graph`
//!   constructor is a thin wrapper over the same adapter.
//! * [`shard`] — the sharded catalog: per-shard stores on a shared
//!   [`intern::SchemaInterner`] with a router mapping
//!   shard-local ids to global record ids and back.
//! * [`pipeline`] — blocking → comparison → links, with comparison
//!   accounting; the comparison phase runs serially, or on a
//!   work-stealing block scheduler over one store or over all shards.
//! * [`serve`] — link-as-a-service: a pre-warmed [`serve::Linker`]
//!   handle answering single-record probes through the batch code path
//!   (bit-identical links), over a catalog swapped atomically by epoch
//!   so updates never block in-flight probes.
//! * [`persist`] — crash-safe catalog persistence: checksummed
//!   content-addressed shard snapshots committed by an atomic manifest
//!   rename, with a restart path that verifies every checksum and falls
//!   back to the previous manifest generation on corruption.
//!
//! ## Quick example
//!
//! ```
//! use classilink_linking::blocking::{Blocker, BlockingKey, StandardBlocker};
//! use classilink_linking::comparator::RecordComparator;
//! use classilink_linking::pipeline::LinkagePipeline;
//! use classilink_linking::record::Record;
//! use classilink_linking::similarity::SimilarityMeasure;
//! use classilink_rdf::Term;
//!
//! let pn = "http://example.org/vocab#partNumber";
//! let mut external = Record::new(Term::iri("http://provider.example.org/item/1"));
//! external.add(pn, "CRCW0805-10K");
//! let mut local = Record::new(Term::iri("http://local.example.org/prod/1"));
//! local.add(pn, "CRCW0805-10K");
//!
//! let blocker = StandardBlocker::new(BlockingKey::shared(pn, 4));
//! let comparator = RecordComparator::single(pn, pn, SimilarityMeasure::JaroWinkler);
//! let result = LinkagePipeline::new(&blocker, &comparator).run(&[external], &[local]);
//! assert_eq!(result.matches.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod blocking;
pub mod comparator;
pub mod error;
pub mod index;
pub mod ingest;
pub mod intern;
pub mod persist;
pub mod pipeline;
pub mod record;
pub mod serve;
pub mod shard;
pub mod similarity;
pub mod store;
pub mod token_index;

pub use blocking::{
    BigramBlocker, BigramFilterStats, Blocker, BlockingKey, BlockingStats, CandidateBlock,
    CandidatePair, CandidateRuns, CartesianBlocker, DisjointnessFilter, KeySide, LocalRun,
    RuleBasedBlocker, SortedNeighborhoodBlocker, StandardBlocker,
};
pub use comparator::{
    AttributeRule, Comparison, CompiledComparator, LeftHoist, MatchDecision, RecordComparator,
};
pub use error::{LinkError, LinkResult};
pub use index::InvertedIndex;
pub use ingest::{FeedFormat, FeedIngest, RecordSink, SubjectGrouper};
pub use intern::{PropertyId, PropertyInterner, SchemaInterner};
pub use persist::{CatalogSnapshot, PersistError, RecoveryReport, SnapshotReceipt};
pub use pipeline::{Link, LinkagePipeline, LinkageResult};
pub use record::Record;
pub use serve::{CatalogEpoch, Linker, LinkerCatalog, ProbeHits, ProbeScratch};
pub use shard::{LocalShards, ShardedStore, ShardedStoreBuilder};
pub use similarity::{SimScratch, SimilarityMeasure};
pub use store::{RecordStore, RecordStoreBuilder, ValueList};
pub use token_index::{KeyIndex, TokenIndex};
