//! The end-to-end linkage pipeline: blocking → pairwise comparison → links.
//!
//! This is the "linking method" the paper assumes downstream of its
//! classification rules: once the linking space has been reduced (by a
//! blocker or by the rules), every remaining candidate pair is compared and
//! decided. The pipeline counts comparisons so that experiments can report
//! exactly how much work each reduction strategy saves.
//!
//! The comparison phase runs on the columnar [`RecordStore`]: the
//! comparator is compiled once (property IRIs → interned ids), and the
//! candidate pairs are scored by a **work-stealing block scheduler** —
//! every store (or every shard of a [`ShardedStore`], see
//! [`LinkagePipeline::run_sharded`]) contributes a task queue of
//! fixed-size candidate blocks; workers drain their home queue first and
//! then steal whole blocks from the remaining queues, claiming blocks
//! with one atomic increment (no locks, no term cloning in the loop).
//! Workers keep per-thread output vectors that are concatenated and
//! sorted by **index pair**, so the output is byte-identical regardless
//! of thread count, steal order, or sharding; only the surviving links
//! materialise their [`Term`]s.
//!
//! Blocking feeds the scheduler **by streaming**: the blocker emits
//! per-shard runs of shard-local candidate pairs
//! ([`Blocker::stream_candidates`] into a [`CandidateRuns`] sink), and
//! those runs *are* the task queues — the pipeline never materialises a
//! global candidate vector, never sorts candidates, and never routes a
//! global id back to a shard.

use crate::blocking::{Blocker, CandidatePair, CandidateRuns};
use crate::comparator::{CompiledComparator, MatchDecision, RecordComparator};
use crate::record::Record;
use crate::shard::{LocalShards, ShardedStore};
use crate::similarity::SimScratch;
use crate::store::RecordStore;
use classilink_rdf::Term;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One discovered link (or possible link) between an external and a local
/// record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// The external item.
    pub external: Term,
    /// The local item.
    pub local: Term,
    /// The aggregated similarity score.
    pub score: f64,
}

/// The outcome of running the pipeline on a pair of record sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LinkageResult {
    /// Pairs decided as matches, sorted by (external, local) record index.
    pub matches: Vec<Link>,
    /// Pairs decided as possible matches (for clerical review), sorted by
    /// (external, local) record index.
    pub possible: Vec<Link>,
    /// Number of pairwise comparisons performed — by construction every
    /// candidate pair the blocker emits is compared exactly once, so this
    /// is also the candidate count.
    pub comparisons: u64,
    /// Size of the naive linking space `|SE| × |SL|`.
    pub naive_pairs: u64,
    /// `1 − comparisons / naive_pairs`.
    pub reduction_ratio: f64,
}

impl LinkageResult {
    /// `(external, local)` pairs decided as matches.
    pub fn matched_pairs(&self) -> Vec<(Term, Term)> {
        self.matches
            .iter()
            .map(|l| (l.external.clone(), l.local.clone()))
            .collect()
    }
}

/// A scored candidate, still as store indexes (terms are materialised
/// only for pairs that survive thresholding).
type ScoredPair = (usize, usize, f64);

/// A blocking strategy plus a record comparator, with optional multi-threaded
/// comparison.
pub struct LinkagePipeline<'a> {
    blocker: &'a dyn Blocker,
    comparator: &'a RecordComparator,
    /// Number of worker threads used for the comparison phase (1 = serial).
    pub threads: usize,
}

impl<'a> LinkagePipeline<'a> {
    /// A serial pipeline.
    pub fn new(blocker: &'a dyn Blocker, comparator: &'a RecordComparator) -> Self {
        LinkagePipeline {
            blocker,
            comparator,
            threads: 1,
        }
    }

    /// Use up to `threads` worker threads for the comparison phase.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Columnarise two record slices and run the pipeline (the mechanical
    /// migration path for `&[Record]` call sites; store-holding callers
    /// should use [`run_stores`](Self::run_stores)).
    pub fn run(&self, external: &[Record], local: &[Record]) -> LinkageResult {
        self.run_stores(
            &RecordStore::from_records(external),
            &RecordStore::from_records(local),
        )
    }

    /// Run blocking and comparison over two record stores.
    ///
    /// Blocking streams (see [`Blocker::stream_candidates`]): the
    /// monolithic store is a single-shard view whose candidate run *is*
    /// the comparison task queue.
    pub fn run_stores(&self, external: &RecordStore, local: &RecordStore) -> LinkageResult {
        let mut runs = CandidateRuns::new();
        self.blocker
            .stream_candidates(external, LocalShards::single(local), &mut runs);
        let naive_pairs = external.len() as u64 * local.len() as u64;
        let compiled = self.comparator.compile(external, local);
        if compiled.uses_token_index() {
            // Build the token indexes before the workers start, so the
            // per-pair loop only ever sees the cached index.
            external.token_index();
            local.token_index();
        }
        // A monolithic store is one task queue; workers still steal
        // blocks from it instead of folding fixed `len / threads` chunks,
        // so stragglers no longer serialise the join.
        let comparisons = runs.total() as usize;
        let queues = [TaskQueue::new(local, 0, runs.shard(0))];
        let (matches, possible) = self.score(&compiled, external, &queues, comparisons);
        self.finish(matches, possible, comparisons, naive_pairs, external, |l| {
            local.id(l)
        })
    }

    /// Run blocking and comparison against a sharded catalog.
    ///
    /// Blocking **streams per-shard candidate runs** (shard-local ids,
    /// see [`Blocker::stream_candidates`]) straight into the
    /// work-stealing task queues: no global candidate vector is
    /// materialised, nothing is sorted between the phases, and no global
    /// id is routed back through the offset table's binary search — the
    /// sum of run lengths is the comparison count. The comparator is
    /// compiled **once** against the shared schema and reused by every
    /// worker on every shard. Output is byte-identical to
    /// [`run_stores`](Self::run_stores) on the equivalent single store.
    pub fn run_sharded(&self, external: &RecordStore, local: &ShardedStore) -> LinkageResult {
        let mut runs = CandidateRuns::new();
        self.blocker
            .stream_candidates(external, local.into(), &mut runs);
        let naive_pairs = external.len() as u64 * local.len() as u64;
        let compiled = self
            .comparator
            .compile_schemas(external.interner(), local.schema());
        if compiled.uses_token_index() {
            external.token_index();
            for shard in local.shards() {
                shard.token_index();
            }
        }
        let comparisons = runs.total() as usize;
        let queues: Vec<TaskQueue<'_>> = (0..local.shard_count())
            .map(|s| TaskQueue::new(local.shard(s), local.offset(s), runs.shard(s)))
            .collect();
        let (matches, possible) = self.score(&compiled, external, &queues, comparisons);
        self.finish(matches, possible, comparisons, naive_pairs, external, |l| {
            local.id(l)
        })
    }

    /// Score every queued candidate block, serially or with work
    /// stealing, returning unsorted scored pairs (local side in global
    /// ids).
    fn score(
        &self,
        compiled: &CompiledComparator<'_>,
        external: &RecordStore,
        queues: &[TaskQueue<'_>],
        candidate_count: usize,
    ) -> (Vec<ScoredPair>, Vec<ScoredPair>) {
        if self.threads <= 1 || candidate_count < STEAL_BLOCK {
            let mut matches = Vec::new();
            let mut possible = Vec::new();
            let mut scratch = SimScratch::new();
            for queue in queues {
                score_block(
                    compiled,
                    queue.pairs,
                    external,
                    queue.store,
                    queue.base,
                    &mut scratch,
                    &mut matches,
                    &mut possible,
                );
            }
            (matches, possible)
        } else {
            score_stealing(compiled, external, queues, self.threads)
        }
    }

    /// Sort, account and materialise the result (shared tail of the
    /// store and sharded paths).
    fn finish<'t>(
        &self,
        mut matches: Vec<ScoredPair>,
        mut possible: Vec<ScoredPair>,
        comparisons: usize,
        naive_pairs: u64,
        external: &RecordStore,
        local_id: impl Fn(usize) -> &'t Term,
    ) -> LinkageResult {
        // Deterministic output regardless of blocker emission order or
        // steal interleaving: sort by index pair, not by cloned terms.
        matches.sort_unstable_by_key(|a| (a.0, a.1));
        possible.sort_unstable_by_key(|a| (a.0, a.1));
        let comparisons = comparisons as u64;
        let reduction_ratio = if naive_pairs == 0 {
            0.0
        } else {
            1.0 - comparisons as f64 / naive_pairs as f64
        };
        LinkageResult {
            matches: materialise(&matches, external, &local_id),
            possible: materialise(&possible, external, &local_id),
            comparisons,
            naive_pairs,
            reduction_ratio,
        }
    }
}

/// Number of candidate pairs a worker claims per steal. Large enough that
/// the atomic claim is noise, small enough that an uneven shard doesn't
/// leave workers idle at the tail.
const STEAL_BLOCK: usize = 1024;

/// One store's (or shard's) share of the comparison work: its candidate
/// pairs in shard-local ids, claimed block by block via an atomic cursor.
struct TaskQueue<'a> {
    store: &'a RecordStore,
    /// Global id of the store's record 0 (0 for a monolithic store).
    base: usize,
    /// Candidate pairs with the local side in shard-local ids.
    pairs: &'a [CandidatePair],
    /// Index of the next unclaimed block.
    next_block: AtomicUsize,
}

impl<'a> TaskQueue<'a> {
    fn new(store: &'a RecordStore, base: usize, pairs: &'a [CandidatePair]) -> Self {
        TaskQueue {
            store,
            base,
            pairs,
            next_block: AtomicUsize::new(0),
        }
    }

    /// Claim the next block of pairs, or `None` when the queue is drained.
    fn claim(&self) -> Option<&'a [CandidatePair]> {
        let block = self.next_block.fetch_add(1, Ordering::Relaxed);
        let start = block.checked_mul(STEAL_BLOCK)?;
        if start >= self.pairs.len() {
            return None;
        }
        Some(&self.pairs[start..(start + STEAL_BLOCK).min(self.pairs.len())])
    }
}

/// The work-stealing comparison phase: `threads` scoped workers, each
/// starting on its home queue (`worker index mod queue count`) and, once
/// that is drained, stealing blocks from the remaining queues in ring
/// order. Queues never refill, so a single sweep over the ring visits all
/// work; the atomic block cursor makes claims race-free without locks.
fn score_stealing(
    compiled: &CompiledComparator<'_>,
    external: &RecordStore,
    queues: &[TaskQueue<'_>],
    threads: usize,
) -> (Vec<ScoredPair>, Vec<ScoredPair>) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    let mut matches = Vec::new();
                    let mut possible = Vec::new();
                    // Each worker owns one scratch for its whole run:
                    // every pair it scores reuses the same buffers.
                    let mut scratch = SimScratch::new();
                    for hop in 0..queues.len() {
                        let queue = &queues[(worker + hop) % queues.len()];
                        while let Some(block) = queue.claim() {
                            score_block(
                                compiled,
                                block,
                                external,
                                queue.store,
                                queue.base,
                                &mut scratch,
                                &mut matches,
                                &mut possible,
                            );
                        }
                    }
                    (matches, possible)
                })
            })
            .collect();
        let mut matches = Vec::new();
        let mut possible = Vec::new();
        for handle in handles {
            let (worker_matches, worker_possible) =
                handle.join().expect("comparison worker panicked");
            matches.extend(worker_matches);
            possible.extend(worker_possible);
        }
        (matches, possible)
    })
}

/// Compare every candidate of one block, keeping index pairs only (the
/// local side offset back to global ids). Runs on the detail-free
/// [`CompiledComparator::score`] path: the only allocations are the
/// (amortised) pushes of surviving pairs.
#[allow(clippy::too_many_arguments)]
fn score_block(
    compiled: &CompiledComparator<'_>,
    candidates: &[CandidatePair],
    external: &RecordStore,
    local: &RecordStore,
    base: usize,
    scratch: &mut SimScratch,
    matches: &mut Vec<ScoredPair>,
    possible: &mut Vec<ScoredPair>,
) {
    for &(e, l) in candidates {
        if e >= external.len() || l >= local.len() {
            continue;
        }
        let (score, decision) = compiled.score(external, e, local, l, scratch);
        match decision {
            MatchDecision::Match => matches.push((e, base + l, score)),
            MatchDecision::Possible => possible.push((e, base + l, score)),
            MatchDecision::NonMatch => {}
        }
    }
}

/// Clone terms only for the pairs that became links.
fn materialise<'t>(
    pairs: &[ScoredPair],
    external: &RecordStore,
    local_id: impl Fn(usize) -> &'t Term,
) -> Vec<Link> {
    pairs
        .iter()
        .map(|&(e, l, score)| Link {
            external: external.id(e).clone(),
            local: local_id(l).clone(),
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::{BlockingKey, CartesianBlocker, StandardBlocker};
    use crate::similarity::SimilarityMeasure;

    fn comparator() -> RecordComparator {
        RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler)
            .with_thresholds(0.95, 0.7)
    }

    #[test]
    fn cartesian_pipeline_finds_all_true_links() {
        let (external, local) = small_dataset();
        let cmp = comparator();
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&external, &local);
        assert_eq!(result.comparisons, 20);
        assert_eq!(result.naive_pairs, 20);
        assert_eq!(result.reduction_ratio, 0.0);
        assert_eq!(result.matches.len(), 4);
        let pairs = result.matched_pairs();
        assert!(pairs.iter().all(|(e, l)| e
            .as_iri()
            .unwrap()
            .ends_with(&l.as_iri().unwrap()[l.as_iri().unwrap().len() - 1..])));
    }

    #[test]
    fn blocking_reduces_comparisons_without_losing_links() {
        let (external, local) = small_dataset();
        let cmp = comparator();
        let blocker = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 4));
        let result = LinkagePipeline::new(&blocker, &cmp).run(&external, &local);
        assert!(result.comparisons < 20);
        assert!(result.reduction_ratio > 0.0);
        assert_eq!(result.matches.len(), 4);
    }

    #[test]
    fn run_on_stores_matches_run_on_records() {
        let (external, local) = small_dataset();
        let cmp = comparator();
        let pipeline = LinkagePipeline::new(&CartesianBlocker, &cmp);
        let from_records = pipeline.run(&external, &local);
        let from_stores = pipeline.run_stores(
            &RecordStore::from_records(&external),
            &RecordStore::from_records(&local),
        );
        assert_eq!(from_records, from_stores);
    }

    #[test]
    fn possible_matches_are_reported_separately() {
        let (mut external, local) = small_dataset();
        external.push(ext_record(4, "CRCW0805-10X")); // near-miss of local 0
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler)
            .with_thresholds(0.99, 0.9);
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&external, &local);
        assert!(!result.possible.is_empty());
        assert!(result
            .possible
            .iter()
            .all(|l| l.score < 0.99 && l.score >= 0.9));
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Build a dataset large enough to trigger the parallel path.
        let external: Vec<Record> = (0..40)
            .map(|i| ext_record(i, &format!("PN-{i:04}")))
            .collect();
        let local: Vec<Record> = (0..40)
            .map(|i| loc_record(i, &format!("PN-{i:04}")))
            .collect();
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein)
            .with_thresholds(0.99, 0.5);
        let serial = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&external, &local);
        let parallel = LinkagePipeline::new(&CartesianBlocker, &cmp)
            .with_threads(4)
            .run(&external, &local);
        // Index-sorted output makes the two runs byte-identical.
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_inputs_give_empty_result() {
        let cmp = comparator();
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&[], &[]);
        assert_eq!(result.comparisons, 0);
        assert!(result.matches.is_empty());
        assert_eq!(result.reduction_ratio, 0.0);
    }

    #[test]
    fn thread_count_is_clamped() {
        let cmp = comparator();
        let p = LinkagePipeline::new(&CartesianBlocker, &cmp).with_threads(0);
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn sharded_run_is_byte_identical_to_single_store() {
        let external: Vec<Record> = (0..40)
            .map(|i| ext_record(i, &format!("PN-{i:04}")))
            .collect();
        let local: Vec<Record> = (0..40)
            .map(|i| loc_record(i, &format!("PN-{i:04}")))
            .collect();
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein)
            .with_thresholds(0.99, 0.5);
        let external_store = RecordStore::from_records(&external);
        let serial = LinkagePipeline::new(&CartesianBlocker, &cmp)
            .run_stores(&external_store, &RecordStore::from_records(&local));
        // Shard counts chosen to cover even, uneven and empty shards,
        // serial and work-stealing comparison phases.
        for shard_count in [1, 3, 7, 41] {
            for threads in [1, 4] {
                let sharded = crate::shard::ShardedStore::from_records(&local, shard_count);
                let result = LinkagePipeline::new(&CartesianBlocker, &cmp)
                    .with_threads(threads)
                    .run_sharded(&external_store, &sharded);
                assert_eq!(
                    serial, result,
                    "{shard_count} shards, {threads} threads mismatch"
                );
            }
        }
    }

    #[test]
    fn sharded_run_on_empty_catalog() {
        let cmp = comparator();
        let sharded = crate::shard::ShardedStore::from_records(&[], 4);
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp)
            .run_sharded(&RecordStore::from_records(&[]), &sharded);
        assert_eq!(result.comparisons, 0);
        assert!(result.matches.is_empty());
        assert_eq!(result.reduction_ratio, 0.0);
    }
}
