//! The end-to-end linkage pipeline: blocking → pairwise comparison → links.
//!
//! This is the "linking method" the paper assumes downstream of its
//! classification rules: once the linking space has been reduced (by a
//! blocker or by the rules), every remaining candidate pair is compared and
//! decided. The pipeline counts comparisons so that experiments can report
//! exactly how much work each reduction strategy saves.

use crate::blocking::{Blocker, CandidatePair};
use crate::comparator::{MatchDecision, RecordComparator};
use crate::record::Record;
use classilink_rdf::Term;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One discovered link (or possible link) between an external and a local
/// record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// The external item.
    pub external: Term,
    /// The local item.
    pub local: Term,
    /// The aggregated similarity score.
    pub score: f64,
}

/// The outcome of running the pipeline on a pair of record sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LinkageResult {
    /// Pairs decided as matches.
    pub matches: Vec<Link>,
    /// Pairs decided as possible matches (for clerical review).
    pub possible: Vec<Link>,
    /// Number of candidate pairs produced by the blocker.
    pub candidate_pairs: u64,
    /// Number of pairwise comparisons performed (equals `candidate_pairs`).
    pub comparisons: u64,
    /// Size of the naive linking space `|SE| × |SL|`.
    pub naive_pairs: u64,
    /// `1 − comparisons / naive_pairs`.
    pub reduction_ratio: f64,
}

impl LinkageResult {
    /// `(external, local)` pairs decided as matches.
    pub fn matched_pairs(&self) -> Vec<(Term, Term)> {
        self.matches
            .iter()
            .map(|l| (l.external.clone(), l.local.clone()))
            .collect()
    }
}

/// A blocking strategy plus a record comparator, with optional multi-threaded
/// comparison.
pub struct LinkagePipeline<'a> {
    blocker: &'a dyn Blocker,
    comparator: &'a RecordComparator,
    /// Number of worker threads used for the comparison phase (1 = serial).
    pub threads: usize,
}

impl<'a> LinkagePipeline<'a> {
    /// A serial pipeline.
    pub fn new(blocker: &'a dyn Blocker, comparator: &'a RecordComparator) -> Self {
        LinkagePipeline {
            blocker,
            comparator,
            threads: 1,
        }
    }

    /// Use up to `threads` worker threads for the comparison phase.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Run blocking and comparison over the two record sets.
    pub fn run(&self, external: &[Record], local: &[Record]) -> LinkageResult {
        let candidates = self.blocker.candidate_pairs(external, local);
        let naive_pairs = external.len() as u64 * local.len() as u64;
        let (matches, possible) = if self.threads <= 1 || candidates.len() < 1024 {
            self.compare_serial(&candidates, external, local)
        } else {
            self.compare_parallel(&candidates, external, local)
        };
        let comparisons = candidates.len() as u64;
        let reduction_ratio = if naive_pairs == 0 {
            0.0
        } else {
            1.0 - comparisons as f64 / naive_pairs as f64
        };
        LinkageResult {
            matches,
            possible,
            candidate_pairs: comparisons,
            comparisons,
            naive_pairs,
            reduction_ratio,
        }
    }

    fn classify_pair(
        &self,
        pair: &CandidatePair,
        external: &[Record],
        local: &[Record],
    ) -> Option<(MatchDecision, Link)> {
        classify_pair(self.comparator, pair, external, local)
    }

    fn compare_serial(
        &self,
        candidates: &[CandidatePair],
        external: &[Record],
        local: &[Record],
    ) -> (Vec<Link>, Vec<Link>) {
        let mut matches = Vec::new();
        let mut possible = Vec::new();
        for pair in candidates {
            if let Some((decision, link)) = self.classify_pair(pair, external, local) {
                match decision {
                    MatchDecision::Match => matches.push(link),
                    MatchDecision::Possible => possible.push(link),
                    MatchDecision::NonMatch => {}
                }
            }
        }
        (matches, possible)
    }

    fn compare_parallel(
        &self,
        candidates: &[CandidatePair],
        external: &[Record],
        local: &[Record],
    ) -> (Vec<Link>, Vec<Link>) {
        let matches: Mutex<Vec<Link>> = Mutex::new(Vec::new());
        let possible: Mutex<Vec<Link>> = Mutex::new(Vec::new());
        let matches_ref = &matches;
        let possible_ref = &possible;
        let comparator = self.comparator;
        let chunk_size = candidates.len().div_ceil(self.threads).max(1);
        crossbeam::scope(|scope| {
            for chunk in candidates.chunks(chunk_size) {
                scope.spawn(move |_| {
                    let mut local_matches = Vec::new();
                    let mut local_possible = Vec::new();
                    for pair in chunk {
                        if let Some((decision, link)) = classify_pair(comparator, pair, external, local)
                        {
                            match decision {
                                MatchDecision::Match => local_matches.push(link),
                                MatchDecision::Possible => local_possible.push(link),
                                MatchDecision::NonMatch => {}
                            }
                        }
                    }
                    matches_ref.lock().extend(local_matches);
                    possible_ref.lock().extend(local_possible);
                });
            }
        })
        .expect("comparison worker panicked");
        let mut matches = matches.into_inner();
        let mut possible = possible.into_inner();
        // Deterministic output regardless of thread interleaving.
        let sort_key = |l: &Link| (l.external.clone(), l.local.clone());
        matches.sort_by_key(sort_key);
        possible.sort_by_key(sort_key);
        (matches, possible)
    }
}

/// Compare one candidate pair and build its [`Link`].
fn classify_pair(
    comparator: &RecordComparator,
    pair: &CandidatePair,
    external: &[Record],
    local: &[Record],
) -> Option<(MatchDecision, Link)> {
    let (e, l) = *pair;
    let left = external.get(e)?;
    let right = local.get(l)?;
    let comparison = comparator.compare(left, right);
    let link = Link {
        external: left.id.clone(),
        local: right.id.clone(),
        score: comparison.score,
    };
    Some((comparison.decision, link))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::{BlockingKey, CartesianBlocker, StandardBlocker};
    use crate::similarity::SimilarityMeasure;

    fn comparator() -> RecordComparator {
        RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler)
            .with_thresholds(0.95, 0.7)
    }

    #[test]
    fn cartesian_pipeline_finds_all_true_links() {
        let (external, local) = small_dataset();
        let cmp = comparator();
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&external, &local);
        assert_eq!(result.comparisons, 20);
        assert_eq!(result.naive_pairs, 20);
        assert_eq!(result.reduction_ratio, 0.0);
        assert_eq!(result.matches.len(), 4);
        let pairs = result.matched_pairs();
        assert!(pairs
            .iter()
            .all(|(e, l)| e.as_iri().unwrap().ends_with(&l.as_iri().unwrap()[l.as_iri().unwrap().len() - 1..])));
    }

    #[test]
    fn blocking_reduces_comparisons_without_losing_links() {
        let (external, local) = small_dataset();
        let cmp = comparator();
        let blocker = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 4));
        let result = LinkagePipeline::new(&blocker, &cmp).run(&external, &local);
        assert!(result.comparisons < 20);
        assert!(result.reduction_ratio > 0.0);
        assert_eq!(result.matches.len(), 4);
    }

    #[test]
    fn possible_matches_are_reported_separately() {
        let (mut external, local) = small_dataset();
        external.push(ext_record(4, "CRCW0805-10X")); // near-miss of local 0
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler)
            .with_thresholds(0.99, 0.9);
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&external, &local);
        assert!(!result.possible.is_empty());
        assert!(result.possible.iter().all(|l| l.score < 0.99 && l.score >= 0.9));
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Build a dataset large enough to trigger the parallel path.
        let external: Vec<Record> = (0..40).map(|i| ext_record(i, &format!("PN-{i:04}"))).collect();
        let local: Vec<Record> = (0..40).map(|i| loc_record(i, &format!("PN-{i:04}"))).collect();
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein)
            .with_thresholds(0.99, 0.5);
        let serial = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&external, &local);
        let parallel = LinkagePipeline::new(&CartesianBlocker, &cmp)
            .with_threads(4)
            .run(&external, &local);
        assert_eq!(serial.matches.len(), parallel.matches.len());
        assert_eq!(serial.comparisons, parallel.comparisons);
        let serial_pairs: std::collections::HashSet<_> =
            serial.matched_pairs().into_iter().collect();
        let parallel_pairs: std::collections::HashSet<_> =
            parallel.matched_pairs().into_iter().collect();
        assert_eq!(serial_pairs, parallel_pairs);
    }

    #[test]
    fn empty_inputs_give_empty_result() {
        let cmp = comparator();
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&[], &[]);
        assert_eq!(result.comparisons, 0);
        assert!(result.matches.is_empty());
        assert_eq!(result.reduction_ratio, 0.0);
    }

    #[test]
    fn thread_count_is_clamped() {
        let cmp = comparator();
        let p = LinkagePipeline::new(&CartesianBlocker, &cmp).with_threads(0);
        assert_eq!(p.threads, 1);
    }
}
