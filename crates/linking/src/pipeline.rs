//! The end-to-end linkage pipeline: blocking → pairwise comparison → links.
//!
//! This is the "linking method" the paper assumes downstream of its
//! classification rules: once the linking space has been reduced (by a
//! blocker or by the rules), every remaining candidate pair is compared and
//! decided. The pipeline counts comparisons so that experiments can report
//! exactly how much work each reduction strategy saves.
//!
//! The comparison phase runs on the columnar [`RecordStore`]: the
//! comparator is compiled once (property IRIs → interned ids), candidate
//! chunks are folded on scoped worker threads into per-thread vectors of
//! **index pairs** (no locks, no term cloning in the loop), the chunk
//! results are concatenated in deterministic chunk order, sorted by index
//! pair, and only the surviving links materialise their [`Term`]s.

use crate::blocking::{Blocker, CandidatePair};
use crate::comparator::{CompiledComparator, MatchDecision, RecordComparator};
use crate::record::Record;
use crate::store::RecordStore;
use classilink_rdf::Term;
use serde::{Deserialize, Serialize};

/// One discovered link (or possible link) between an external and a local
/// record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// The external item.
    pub external: Term,
    /// The local item.
    pub local: Term,
    /// The aggregated similarity score.
    pub score: f64,
}

/// The outcome of running the pipeline on a pair of record sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LinkageResult {
    /// Pairs decided as matches, sorted by (external, local) record index.
    pub matches: Vec<Link>,
    /// Pairs decided as possible matches (for clerical review), sorted by
    /// (external, local) record index.
    pub possible: Vec<Link>,
    /// Number of pairwise comparisons performed — by construction every
    /// candidate pair the blocker emits is compared exactly once, so this
    /// is also the candidate count.
    pub comparisons: u64,
    /// Size of the naive linking space `|SE| × |SL|`.
    pub naive_pairs: u64,
    /// `1 − comparisons / naive_pairs`.
    pub reduction_ratio: f64,
}

impl LinkageResult {
    /// `(external, local)` pairs decided as matches.
    pub fn matched_pairs(&self) -> Vec<(Term, Term)> {
        self.matches
            .iter()
            .map(|l| (l.external.clone(), l.local.clone()))
            .collect()
    }
}

/// A scored candidate, still as store indexes (terms are materialised
/// only for pairs that survive thresholding).
type ScoredPair = (usize, usize, f64);

/// A blocking strategy plus a record comparator, with optional multi-threaded
/// comparison.
pub struct LinkagePipeline<'a> {
    blocker: &'a dyn Blocker,
    comparator: &'a RecordComparator,
    /// Number of worker threads used for the comparison phase (1 = serial).
    pub threads: usize,
}

impl<'a> LinkagePipeline<'a> {
    /// A serial pipeline.
    pub fn new(blocker: &'a dyn Blocker, comparator: &'a RecordComparator) -> Self {
        LinkagePipeline {
            blocker,
            comparator,
            threads: 1,
        }
    }

    /// Use up to `threads` worker threads for the comparison phase.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Columnarise two record slices and run the pipeline (the mechanical
    /// migration path for `&[Record]` call sites; store-holding callers
    /// should use [`run_stores`](Self::run_stores)).
    pub fn run(&self, external: &[Record], local: &[Record]) -> LinkageResult {
        self.run_stores(
            &RecordStore::from_records(external),
            &RecordStore::from_records(local),
        )
    }

    /// Run blocking and comparison over two record stores.
    pub fn run_stores(&self, external: &RecordStore, local: &RecordStore) -> LinkageResult {
        let candidates = self.blocker.candidate_pairs(external, local);
        let naive_pairs = external.len() as u64 * local.len() as u64;
        let compiled = self.comparator.compile(external, local);
        let (mut matches, mut possible) = if self.threads <= 1 || candidates.len() < 1024 {
            score_chunk(&compiled, &candidates, external, local)
        } else {
            self.score_parallel(&compiled, &candidates, external, local)
        };
        // Deterministic output regardless of blocker emission order or
        // thread interleaving: sort by index pair, not by cloned terms.
        matches.sort_unstable_by_key(|a| (a.0, a.1));
        possible.sort_unstable_by_key(|a| (a.0, a.1));
        let comparisons = candidates.len() as u64;
        let reduction_ratio = if naive_pairs == 0 {
            0.0
        } else {
            1.0 - comparisons as f64 / naive_pairs as f64
        };
        LinkageResult {
            matches: materialise(&matches, external, local),
            possible: materialise(&possible, external, local),
            comparisons,
            naive_pairs,
            reduction_ratio,
        }
    }

    /// Fold candidate chunks on scoped worker threads. Each worker owns
    /// its chunk's output vectors; the join loop concatenates them in
    /// chunk order, so no mutex guards the hot loop.
    fn score_parallel(
        &self,
        compiled: &CompiledComparator<'_>,
        candidates: &[CandidatePair],
        external: &RecordStore,
        local: &RecordStore,
    ) -> (Vec<ScoredPair>, Vec<ScoredPair>) {
        let chunk_size = candidates.len().div_ceil(self.threads).max(1);
        std::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || score_chunk(compiled, chunk, external, local)))
                .collect();
            let mut matches = Vec::new();
            let mut possible = Vec::new();
            for handle in handles {
                let (chunk_matches, chunk_possible) =
                    handle.join().expect("comparison worker panicked");
                matches.extend(chunk_matches);
                possible.extend(chunk_possible);
            }
            (matches, possible)
        })
    }
}

/// Compare every candidate of one chunk, keeping index pairs only.
fn score_chunk(
    compiled: &CompiledComparator<'_>,
    candidates: &[CandidatePair],
    external: &RecordStore,
    local: &RecordStore,
) -> (Vec<ScoredPair>, Vec<ScoredPair>) {
    let mut matches = Vec::new();
    let mut possible = Vec::new();
    for &(e, l) in candidates {
        if e >= external.len() || l >= local.len() {
            continue;
        }
        let comparison = compiled.compare(external, e, local, l);
        match comparison.decision {
            MatchDecision::Match => matches.push((e, l, comparison.score)),
            MatchDecision::Possible => possible.push((e, l, comparison.score)),
            MatchDecision::NonMatch => {}
        }
    }
    (matches, possible)
}

/// Clone terms only for the pairs that became links.
fn materialise(pairs: &[ScoredPair], external: &RecordStore, local: &RecordStore) -> Vec<Link> {
    pairs
        .iter()
        .map(|&(e, l, score)| Link {
            external: external.id(e).clone(),
            local: local.id(l).clone(),
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::{BlockingKey, CartesianBlocker, StandardBlocker};
    use crate::similarity::SimilarityMeasure;

    fn comparator() -> RecordComparator {
        RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler)
            .with_thresholds(0.95, 0.7)
    }

    #[test]
    fn cartesian_pipeline_finds_all_true_links() {
        let (external, local) = small_dataset();
        let cmp = comparator();
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&external, &local);
        assert_eq!(result.comparisons, 20);
        assert_eq!(result.naive_pairs, 20);
        assert_eq!(result.reduction_ratio, 0.0);
        assert_eq!(result.matches.len(), 4);
        let pairs = result.matched_pairs();
        assert!(pairs.iter().all(|(e, l)| e
            .as_iri()
            .unwrap()
            .ends_with(&l.as_iri().unwrap()[l.as_iri().unwrap().len() - 1..])));
    }

    #[test]
    fn blocking_reduces_comparisons_without_losing_links() {
        let (external, local) = small_dataset();
        let cmp = comparator();
        let blocker = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 4));
        let result = LinkagePipeline::new(&blocker, &cmp).run(&external, &local);
        assert!(result.comparisons < 20);
        assert!(result.reduction_ratio > 0.0);
        assert_eq!(result.matches.len(), 4);
    }

    #[test]
    fn run_on_stores_matches_run_on_records() {
        let (external, local) = small_dataset();
        let cmp = comparator();
        let pipeline = LinkagePipeline::new(&CartesianBlocker, &cmp);
        let from_records = pipeline.run(&external, &local);
        let from_stores = pipeline.run_stores(
            &RecordStore::from_records(&external),
            &RecordStore::from_records(&local),
        );
        assert_eq!(from_records, from_stores);
    }

    #[test]
    fn possible_matches_are_reported_separately() {
        let (mut external, local) = small_dataset();
        external.push(ext_record(4, "CRCW0805-10X")); // near-miss of local 0
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler)
            .with_thresholds(0.99, 0.9);
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&external, &local);
        assert!(!result.possible.is_empty());
        assert!(result
            .possible
            .iter()
            .all(|l| l.score < 0.99 && l.score >= 0.9));
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Build a dataset large enough to trigger the parallel path.
        let external: Vec<Record> = (0..40)
            .map(|i| ext_record(i, &format!("PN-{i:04}")))
            .collect();
        let local: Vec<Record> = (0..40)
            .map(|i| loc_record(i, &format!("PN-{i:04}")))
            .collect();
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein)
            .with_thresholds(0.99, 0.5);
        let serial = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&external, &local);
        let parallel = LinkagePipeline::new(&CartesianBlocker, &cmp)
            .with_threads(4)
            .run(&external, &local);
        // Index-sorted output makes the two runs byte-identical.
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_inputs_give_empty_result() {
        let cmp = comparator();
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&[], &[]);
        assert_eq!(result.comparisons, 0);
        assert!(result.matches.is_empty());
        assert_eq!(result.reduction_ratio, 0.0);
    }

    #[test]
    fn thread_count_is_clamped() {
        let cmp = comparator();
        let p = LinkagePipeline::new(&CartesianBlocker, &cmp).with_threads(0);
        assert_eq!(p.threads, 1);
    }
}
