//! The end-to-end linkage pipeline: blocking → pairwise comparison → links.
//!
//! This is the "linking method" the paper assumes downstream of its
//! classification rules: once the linking space has been reduced (by a
//! blocker or by the rules), every remaining candidate pair is compared and
//! decided. The pipeline counts comparisons so that experiments can report
//! exactly how much work each reduction strategy saves.
//!
//! The comparison phase runs on the columnar [`RecordStore`]: the
//! comparator is compiled once (property IRIs → interned ids), and the
//! candidates are scored by a **work-stealing run-block scheduler** —
//! every store (or every shard of a [`ShardedStore`], see
//! [`LinkagePipeline::run_sharded`]) contributes a task queue of
//! run-length [`CandidateBlock`]s with a comparison-count prefix sum;
//! workers claim the next `STEAL_BLOCK` **comparisons** with one atomic
//! increment (claims split inside large blocks, so a single cartesian
//! span still load-balances), drain their home queue first, then steal
//! from the remaining queues (no locks, no term cloning in the loop).
//! Each claimed block hoists its constant external record once
//! ([`CompiledComparator::hoist_left`]) and decodes its locals straight
//! off the span / key-table / explicit encoding; per-block bounds are
//! validated once at queue build, not per pair. Workers keep per-thread
//! output vectors that are concatenated and sorted by **index pair**,
//! so the output is byte-identical regardless of thread count, steal
//! order, or sharding; only the surviving links materialise their
//! [`Term`]s.
//!
//! Blocking feeds the scheduler **by streaming**: the blocker emits
//! per-shard run-length blocks of shard-local candidates
//! ([`Blocker::stream_candidates`] into a [`CandidateRuns`] sink), and
//! those blocks *are* the task queues — the pipeline never materialises
//! a global candidate vector (or even a per-pair vector), never sorts
//! candidates, and never routes a global id back to a shard.

use crate::blocking::{Blocker, CandidateBlock, CandidateRuns, LocalRun};
use crate::comparator::{CompiledComparator, LeftHoist, MatchDecision, RecordComparator};
use crate::error::{panic_payload, LinkError, LinkResult};
use crate::record::Record;
use crate::shard::{LocalShards, ShardedStore};
use crate::similarity::SimScratch;
use crate::store::RecordStore;
use classilink_rdf::Term;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// One discovered link (or possible link) between an external and a local
/// record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// The external item.
    pub external: Term,
    /// The local item.
    pub local: Term,
    /// The aggregated similarity score.
    pub score: f64,
}

/// The outcome of running the pipeline on a pair of record sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LinkageResult {
    /// Pairs decided as matches, sorted by (external, local) record index.
    pub matches: Vec<Link>,
    /// Pairs decided as possible matches (for clerical review), sorted by
    /// (external, local) record index.
    pub possible: Vec<Link>,
    /// Number of pairwise comparisons performed — by construction every
    /// candidate pair the blocker emits is compared exactly once, so this
    /// is also the candidate count.
    pub comparisons: u64,
    /// Size of the naive linking space `|SE| × |SL|`.
    pub naive_pairs: u64,
    /// `1 − comparisons / naive_pairs`.
    pub reduction_ratio: f64,
}

impl LinkageResult {
    /// `(external, local)` pairs decided as matches.
    pub fn matched_pairs(&self) -> Vec<(Term, Term)> {
        self.matches
            .iter()
            .map(|l| (l.external.clone(), l.local.clone()))
            .collect()
    }
}

/// A scored candidate, still as store indexes (terms are materialised
/// only for pairs that survive thresholding). Crate-visible: the
/// serving layer ([`crate::serve`]) buckets its probe scores into the
/// same shape before materialising.
pub(crate) type ScoredPair = (usize, usize, f64);

/// A blocking strategy plus a record comparator, with optional multi-threaded
/// comparison.
pub struct LinkagePipeline<'a> {
    blocker: &'a dyn Blocker,
    comparator: &'a RecordComparator,
    /// Number of worker threads used for the comparison phase (1 = serial).
    pub threads: usize,
}

impl<'a> LinkagePipeline<'a> {
    /// A serial pipeline.
    pub fn new(blocker: &'a dyn Blocker, comparator: &'a RecordComparator) -> Self {
        LinkagePipeline {
            blocker,
            comparator,
            threads: 1,
        }
    }

    /// Use up to `threads` worker threads for the comparison phase.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Columnarise two record slices and run the pipeline (the mechanical
    /// migration path for `&[Record]` call sites; store-holding callers
    /// should use [`run_stores`](Self::run_stores)).
    pub fn run(&self, external: &[Record], local: &[Record]) -> LinkageResult {
        self.run_stores(
            &RecordStore::from_records(external),
            &RecordStore::from_records(local),
        )
    }

    /// Run blocking and comparison over two record stores.
    ///
    /// Blocking streams (see [`Blocker::stream_candidates`]): the
    /// monolithic store is a single-shard view whose candidate run *is*
    /// the comparison task queue.
    ///
    /// Panics on a contained fault — the fault-tolerant entry point is
    /// [`try_run_stores`](Self::try_run_stores).
    pub fn run_stores(&self, external: &RecordStore, local: &RecordStore) -> LinkageResult {
        self.try_run_stores(external, local)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`run_stores`](Self::run_stores): a panic inside the
    /// blocking or comparison phase is caught at the phase boundary and
    /// returned as a [`LinkError`] instead of unwinding into the caller.
    /// The stores and their lazily built indexes stay valid — a clean
    /// retry is bit-identical to a never-faulted run.
    pub fn try_run_stores(
        &self,
        external: &RecordStore,
        local: &RecordStore,
    ) -> LinkResult<LinkageResult> {
        let mut runs = CandidateRuns::new();
        self.stream_blocking(external, LocalShards::single(local), &mut runs)?;
        let naive_pairs = external.len() as u64 * local.len() as u64;
        let compiled = self.comparator.compile(external, local);
        if compiled.uses_token_index() {
            // Build the token indexes before the workers start, so the
            // per-pair loop only ever sees the cached index.
            external.token_index();
            local.token_index();
        }
        // A monolithic store is one task queue; workers still steal
        // comparison ranges from it instead of folding fixed
        // `len / threads` chunks, so stragglers no longer serialise the
        // join.
        let comparisons = runs.total() as usize;
        let queues = [TaskQueue::new(local, 0, &runs, 0, external.len())];
        let (matches, possible) = self.score(&compiled, external, &queues, comparisons)?;
        Ok(
            self.finish(matches, possible, comparisons, naive_pairs, external, |l| {
                local.id(l)
            }),
        )
    }

    /// Run blocking and comparison against a sharded catalog.
    ///
    /// Blocking **streams per-shard candidate runs** (shard-local ids,
    /// see [`Blocker::stream_candidates`]) straight into the
    /// work-stealing task queues: no global candidate vector is
    /// materialised, nothing is sorted between the phases, and no global
    /// id is routed back through the offset table's binary search — the
    /// sum of run lengths is the comparison count. The comparator is
    /// compiled **once** against the shared schema and reused by every
    /// worker on every shard. Output is byte-identical to
    /// [`run_stores`](Self::run_stores) on the equivalent single store.
    ///
    /// Panics on a contained fault — the fault-tolerant entry point is
    /// [`try_run_sharded`](Self::try_run_sharded).
    pub fn run_sharded(&self, external: &RecordStore, local: &ShardedStore) -> LinkageResult {
        self.try_run_sharded(external, local)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`run_sharded`](Self::run_sharded): see
    /// [`try_run_stores`](Self::try_run_stores) for the containment
    /// contract.
    pub fn try_run_sharded(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
    ) -> LinkResult<LinkageResult> {
        let mut runs = CandidateRuns::new();
        self.stream_blocking(external, local.into(), &mut runs)?;
        let naive_pairs = external.len() as u64 * local.len() as u64;
        let compiled = self
            .comparator
            .compile_schemas(external.interner(), local.schema());
        if compiled.uses_token_index() {
            external.token_index();
            for shard in local.shards() {
                shard.token_index();
            }
        }
        let comparisons = runs.total() as usize;
        let queues: Vec<TaskQueue<'_>> = (0..local.shard_count())
            .map(|s| TaskQueue::new(local.shard(s), local.offset(s), &runs, s, external.len()))
            .collect();
        let (matches, possible) = self.score(&compiled, external, &queues, comparisons)?;
        Ok(
            self.finish(matches, possible, comparisons, naive_pairs, external, |l| {
                local.id(l)
            }),
        )
    }

    /// Incremental linking against an appended catalog: link `external`
    /// only against the records of shards `first_new_shard..` (the
    /// shards a [`ShardedStore::append_shards`] just added), reusing the
    /// cached key/bigram/token artifacts of the untouched shards.
    ///
    /// The result is **bit-identical to the new-shard slice of a full
    /// re-run**: the same `(external, local, score)` links
    /// [`run_sharded`](Self::run_sharded) would report with a local side
    /// at global id ≥ `offset(first_new_shard)`, with `comparisons` and
    /// `naive_pairs` counting only the delta work (so `reduction_ratio`
    /// is the delta's own reduction). Per-shard-independent blockers
    /// skip old shards outright (their probe loops never run); the
    /// sorted-neighbourhood window still walks the whole catalog — its
    /// windows span the shard boundary — but old-shard candidates are
    /// dropped at the sink, so only new-shard pairs are ever scored.
    ///
    /// Panics on a contained fault — the fault-tolerant entry point is
    /// [`try_run_sharded_delta`](Self::try_run_sharded_delta).
    pub fn run_sharded_delta(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
        first_new_shard: usize,
    ) -> LinkageResult {
        self.try_run_sharded_delta(external, local, first_new_shard)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`run_sharded_delta`](Self::run_sharded_delta): see
    /// [`try_run_stores`](Self::try_run_stores) for the containment
    /// contract. A `first_new_shard` at or past the shard count is an
    /// empty delta (zero comparisons), not an error.
    pub fn try_run_sharded_delta(
        &self,
        external: &RecordStore,
        local: &ShardedStore,
        first_new_shard: usize,
    ) -> LinkResult<LinkageResult> {
        let first = first_new_shard.min(local.shard_count());
        let mut runs = CandidateRuns::new();
        runs.restrict_to_shards_from(first);
        self.stream_blocking(external, local.into(), &mut runs)?;
        let delta_len = if first == local.shard_count() {
            0
        } else {
            local.len() - local.offset(first)
        };
        let naive_pairs = external.len() as u64 * delta_len as u64;
        let compiled = self
            .comparator
            .compile_schemas(external.interner(), local.schema());
        if compiled.uses_token_index() {
            external.token_index();
            // Only the new shards can be cold; an old shard's index was
            // built by the full run (or a previous delta) and is cached.
            for shard in &local.shards()[first..] {
                shard.token_index();
            }
        }
        let comparisons = runs.total() as usize;
        let queues: Vec<TaskQueue<'_>> = (first..local.shard_count())
            .map(|s| TaskQueue::new(local.shard(s), local.offset(s), &runs, s, external.len()))
            .collect();
        let (matches, possible) = self.score(&compiled, external, &queues, comparisons)?;
        Ok(
            self.finish(matches, possible, comparisons, naive_pairs, external, |l| {
                local.id(l)
            }),
        )
    }

    /// The blocking failure domain: stream candidates into `runs`,
    /// converting a blocker panic into [`LinkError::BlockingPanicked`].
    /// The sink resets itself at the start of every stream, so a
    /// partially filled `CandidateRuns` from a faulted call never leaks
    /// into the next one.
    fn stream_blocking(
        &self,
        external: &RecordStore,
        local: LocalShards<'_>,
        runs: &mut CandidateRuns,
    ) -> LinkResult<()> {
        catch_unwind(AssertUnwindSafe(|| {
            self.blocker.stream_candidates(external, local, runs)
        }))
        .map_err(|payload| LinkError::BlockingPanicked {
            blocker: self.blocker.name().to_string(),
            payload: panic_payload(payload),
        })
    }

    /// Score every queued candidate block, serially or with work
    /// stealing, returning unsorted scored pairs (local side in global
    /// ids). A panic inside the scoring loop is contained to this phase
    /// and reported as [`LinkError::WorkerPanicked`].
    fn score(
        &self,
        compiled: &CompiledComparator<'_>,
        external: &RecordStore,
        queues: &[TaskQueue<'_>],
        candidate_count: usize,
    ) -> LinkResult<(Vec<ScoredPair>, Vec<ScoredPair>)> {
        if self.threads <= 1 || candidate_count < STEAL_BLOCK as usize {
            let mut matches = Vec::new();
            let mut possible = Vec::new();
            let scored = catch_unwind(AssertUnwindSafe(|| {
                let mut scratch = SimScratch::new();
                let mut hoist = LeftHoist::new();
                for queue in queues {
                    score_range(
                        compiled,
                        queue,
                        0..queue.total,
                        external,
                        &mut scratch,
                        &mut hoist,
                        &mut matches,
                        &mut possible,
                    );
                }
            }));
            match scored {
                Ok(()) => Ok((matches, possible)),
                Err(payload) => Err(LinkError::WorkerPanicked {
                    worker: 0,
                    payload: panic_payload(payload),
                    survivors: 0,
                    partial_links: matches.len() + possible.len(),
                }),
            }
        } else {
            score_stealing(compiled, external, queues, self.threads)
        }
    }

    /// Sort, account and materialise the result (shared tail of the
    /// store and sharded paths).
    fn finish<'t>(
        &self,
        mut matches: Vec<ScoredPair>,
        mut possible: Vec<ScoredPair>,
        comparisons: usize,
        naive_pairs: u64,
        external: &RecordStore,
        local_id: impl Fn(usize) -> &'t Term,
    ) -> LinkageResult {
        // Deterministic output regardless of blocker emission order or
        // steal interleaving: sort by index pair, not by cloned terms.
        matches.sort_unstable_by_key(|a| (a.0, a.1));
        possible.sort_unstable_by_key(|a| (a.0, a.1));
        let comparisons = comparisons as u64;
        let reduction_ratio = if naive_pairs == 0 {
            0.0
        } else {
            1.0 - comparisons as f64 / naive_pairs as f64
        };
        LinkageResult {
            matches: materialise(&matches, external, &local_id),
            possible: materialise(&possible, external, &local_id),
            comparisons,
            naive_pairs,
            reduction_ratio,
        }
    }
}

/// Number of **comparisons** a worker claims per steal. Large enough
/// that the atomic claim is noise, small enough that an uneven shard
/// doesn't leave workers idle at the tail.
const STEAL_BLOCK: u64 = 1024;

/// One store's (or shard's) share of the comparison work: its
/// run-length candidate blocks plus a comparison-count prefix sum, so
/// workers claim by **comparison count** (an atomic cursor over
/// `0..total`) rather than by block — a single giant cartesian span
/// still splits across steals and load-balances.
///
/// Crate-visible: the serving layer ([`crate::serve`]) scores its
/// single-probe candidate runs through the **same** queue + range code
/// path as the batch pipeline, which is what makes probe results
/// bit-identical to batch results by construction.
pub(crate) struct TaskQueue<'a> {
    store: &'a RecordStore,
    /// Global id of the store's record 0 (0 for a monolithic store).
    base: usize,
    /// The shard's candidate blocks, in emission order.
    blocks: &'a [CandidateBlock],
    /// The shard's explicit-locals arena ([`LocalRun::Explicit`]).
    locals: &'a [u32],
    /// The shard key index's sorted record table
    /// ([`LocalRun::Keyed`]; empty when no keyed block exists).
    table: &'a [u32],
    /// `prefix[i]` = comparisons in `blocks[..i]`; `len = blocks + 1`,
    /// `prefix[blocks.len()] == total`. O(runs) memory, built once per
    /// run.
    prefix: Vec<u64>,
    /// Total comparisons queued.
    total: u64,
    /// `true` when the once-per-run bounds validation passed for every
    /// block — the always case for the built-in blockers — letting the
    /// decode loop drop the legacy per-pair bounds checks down to
    /// `debug_assert!`s.
    valid: bool,
    /// Comparison-count cursor: the next unclaimed comparison.
    next: AtomicU64,
}

impl<'a> TaskQueue<'a> {
    /// Build shard `shard`'s queue from the streamed sink: borrow the
    /// blocks and their backing arenas, prefix-sum the block lengths,
    /// and run the **per-run bounds validation** that replaces the old
    /// per-pair `e >= external.len() || l >= local.len()` check — every
    /// block's external id and local-run bounds are checked once here
    /// (the explicit arena via the sink's tracked maximum), not once
    /// per candidate.
    pub(crate) fn new(
        store: &'a RecordStore,
        base: usize,
        runs: &'a CandidateRuns,
        shard: usize,
        external_len: usize,
    ) -> Self {
        Self::with_prefix(store, base, runs, shard, external_len, Vec::new())
    }

    /// [`TaskQueue::new`], but refilling a caller-provided prefix buffer
    /// instead of allocating one — recover it with [`Self::into_prefix`]
    /// after scoring. This is what keeps warm serving-layer probes
    /// allocation-free: the probe scratch owns the buffer across calls.
    pub(crate) fn with_prefix(
        store: &'a RecordStore,
        base: usize,
        runs: &'a CandidateRuns,
        shard: usize,
        external_len: usize,
        mut prefix: Vec<u64>,
    ) -> Self {
        let blocks = runs.blocks(shard);
        let locals = runs.shard_locals(shard);
        let table = runs
            .shard_key_table(shard)
            .map(|index| index.sorted_records())
            .unwrap_or(&[]);
        prefix.clear();
        prefix.reserve(blocks.len() + 1);
        prefix.push(0u64);
        let mut valid =
            locals.is_empty() || (runs.shard_explicit_max(shard) as usize) < store.len();
        // A key table built from this store indexes only ids below
        // `store.len()`, so validating the slice bounds (and the table's
        // provenance, by length) covers every keyed id.
        let table_valid = table.len() == store.len();
        for block in blocks {
            prefix.push(prefix.last().expect("seeded") + block.len() as u64);
            valid &= block.external() < external_len
                && block.bounds_valid(store.len(), locals.len(), table.len(), table_valid);
        }
        let total = *prefix.last().expect("seeded");
        debug_assert_eq!(total, runs.shard_total(shard));
        TaskQueue {
            store,
            base,
            blocks,
            locals,
            table,
            prefix,
            total,
            valid,
            next: AtomicU64::new(0),
        }
    }

    /// Total comparisons queued (the end of the range
    /// [`score_range`] accepts).
    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    /// Recover the prefix buffer passed to [`Self::with_prefix`] so the
    /// caller can reuse its capacity for the next queue.
    pub(crate) fn into_prefix(self) -> Vec<u64> {
        self.prefix
    }

    /// Decode one block's local run from the queue's borrowed arenas.
    fn local_run(&self, block: &CandidateBlock) -> LocalRun<'a> {
        block.decode(self.locals, self.table)
    }

    /// Claim the next range of comparisons, or `None` when the queue is
    /// drained.
    fn claim(&self) -> Option<std::ops::Range<u64>> {
        let start = self.next.fetch_add(STEAL_BLOCK, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + STEAL_BLOCK).min(self.total))
    }
}

/// The work-stealing comparison phase: `threads` scoped workers, each
/// starting on its home queue (`worker index mod queue count`) and, once
/// that is drained, stealing comparison ranges from the remaining queues
/// in ring order. Queues never refill, so a single sweep over the ring
/// visits all work; the atomic comparison-count cursor makes claims
/// race-free without locks, and because claims split *inside* blocks, a
/// single giant cartesian span load-balances like any other work.
///
/// **Panic isolation:** each worker's claim loop runs under
/// [`catch_unwind`], so one panicking worker cannot abort the process or
/// strand the run. Claims are lock-free atomic increments on a cursor
/// that only ever advances, so a dead worker holds no queue state —
/// the surviving workers keep claiming and drain every remaining block
/// (only the dead worker's in-flight claim is lost, and the whole run
/// is reported failed anyway). The join collects per-worker results and
/// turns the first panic into [`LinkError::WorkerPanicked`], carrying
/// how many workers finished cleanly and how many links they drained.
fn score_stealing(
    compiled: &CompiledComparator<'_>,
    external: &RecordStore,
    queues: &[TaskQueue<'_>],
    threads: usize,
) -> LinkResult<(Vec<ScoredPair>, Vec<ScoredPair>)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut matches = Vec::new();
                        let mut possible = Vec::new();
                        // Each worker owns one scratch and one left-side
                        // hoist for its whole run: every pair it scores
                        // reuses the same buffers.
                        let mut scratch = SimScratch::new();
                        let mut hoist = LeftHoist::new();
                        for hop in 0..queues.len() {
                            let queue = &queues[(worker + hop) % queues.len()];
                            while let Some(range) = queue.claim() {
                                score_range(
                                    compiled,
                                    queue,
                                    range,
                                    external,
                                    &mut scratch,
                                    &mut hoist,
                                    &mut matches,
                                    &mut possible,
                                );
                            }
                        }
                        (matches, possible)
                    }))
                })
            })
            .collect();
        let mut matches = Vec::new();
        let mut possible = Vec::new();
        let mut first_panic: Option<(usize, String)> = None;
        let mut survivors = 0;
        for (worker, handle) in handles.into_iter().enumerate() {
            // The worker closure is a catch_unwind, so the thread itself
            // cannot terminate by panic; join only fails on the (aborting)
            // double-panic path, which never returns here.
            match handle
                .join()
                .expect("worker thread cannot outlive its catch_unwind")
            {
                Ok((worker_matches, worker_possible)) => {
                    survivors += 1;
                    matches.extend(worker_matches);
                    possible.extend(worker_possible);
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some((worker, panic_payload(payload)));
                    }
                }
            }
        }
        match first_panic {
            None => Ok((matches, possible)),
            Some((worker, payload)) => Err(LinkError::WorkerPanicked {
                worker,
                payload,
                survivors,
                partial_links: matches.len() + possible.len(),
            }),
        }
    })
}

/// Score the comparisons `range` of one queue (a claimed slice of its
/// comparison-count space), keeping index pairs only (the local side
/// offset back to global ids).
///
/// The range is mapped to blocks through the queue's prefix sum; each
/// overlapped block **hoists its external record once**
/// ([`CompiledComparator::hoist_left`] — the left side of a block is
/// constant by construction) and decodes its local run straight off the
/// span/key-table/explicit encoding. The legacy per-pair bounds check
/// is gone: the queue validated every block once at construction, so
/// the decode loop carries only `debug_assert!`s (an invalid queue —
/// impossible through the built-in blockers — falls back to a cold
/// per-pair-checked path preserving the old skip semantics). Runs on
/// the detail-free [`CompiledComparator::score_hoisted`] path: the only
/// allocations are the (amortised) pushes of surviving pairs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn score_range<'e>(
    compiled: &CompiledComparator<'_>,
    queue: &TaskQueue<'_>,
    range: std::ops::Range<u64>,
    external: &'e RecordStore,
    scratch: &mut SimScratch,
    hoist: &mut LeftHoist<'e>,
    matches: &mut Vec<ScoredPair>,
    possible: &mut Vec<ScoredPair>,
) {
    fail::fail_point!("pipeline::score_range");
    if range.is_empty() {
        return;
    }
    // The block containing the range's first comparison, and the offset
    // of that comparison within it.
    let mut block_index = queue.prefix.partition_point(|&p| p <= range.start) - 1;
    let mut offset = (range.start - queue.prefix[block_index]) as usize;
    let mut remaining = range.end - range.start;
    while remaining > 0 {
        let block = &queue.blocks[block_index];
        let take = ((block.len() - offset) as u64).min(remaining) as usize;
        let e = block.external();
        if queue.valid {
            compiled.hoist_left(external, e, hoist);
            // The decoded loop carries no per-pair check or dispatch:
            // the run is matched once, and the block was validated when
            // the queue was built.
            match queue.local_run(block) {
                LocalRun::Span { start, .. } => {
                    for l in start + offset..start + offset + take {
                        debug_assert!(l < queue.store.len(), "validated span out of range");
                        score_one(
                            compiled, hoist, external, queue, e, l, scratch, matches, possible,
                        );
                    }
                }
                LocalRun::Keyed(ids) | LocalRun::Explicit(ids) => {
                    for &l in &ids[offset..offset + take] {
                        let l = l as usize;
                        debug_assert!(l < queue.store.len(), "validated run out of range");
                        score_one(
                            compiled, hoist, external, queue, e, l, scratch, matches, possible,
                        );
                    }
                }
            }
        } else if e < external.len() && block.decodable(queue.locals.len(), queue.table.len()) {
            // Cold path (externally built sinks only): per-pair checked,
            // skipping out-of-range ids like the legacy scheduler did.
            compiled.hoist_left(external, e, hoist);
            let run = queue.local_run(block);
            for i in offset..offset + take {
                let l = run.get(i);
                if l >= queue.store.len() {
                    continue;
                }
                score_one(
                    compiled, hoist, external, queue, e, l, scratch, matches, possible,
                );
            }
        }
        remaining -= take as u64;
        block_index += 1;
        offset = 0;
    }
}

/// Score one decoded candidate and bucket it by decision (the shared
/// per-pair tail of [`score_range`]'s hot and cold loops).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn score_one(
    compiled: &CompiledComparator<'_>,
    hoist: &LeftHoist<'_>,
    external: &RecordStore,
    queue: &TaskQueue<'_>,
    e: usize,
    l: usize,
    scratch: &mut SimScratch,
    matches: &mut Vec<ScoredPair>,
    possible: &mut Vec<ScoredPair>,
) {
    let (score, decision) = compiled.score_hoisted(hoist, external, queue.store, l, scratch);
    match decision {
        MatchDecision::Match => matches.push((e, queue.base + l, score)),
        MatchDecision::Possible => possible.push((e, queue.base + l, score)),
        MatchDecision::NonMatch => {}
    }
}

/// Clone terms only for the pairs that became links.
fn materialise<'t>(
    pairs: &[ScoredPair],
    external: &RecordStore,
    local_id: impl Fn(usize) -> &'t Term,
) -> Vec<Link> {
    pairs
        .iter()
        .map(|&(e, l, score)| Link {
            external: external.id(e).clone(),
            local: local_id(l).clone(),
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::test_support::*;
    use crate::blocking::{BlockingKey, CartesianBlocker, StandardBlocker};
    use crate::similarity::SimilarityMeasure;

    fn comparator() -> RecordComparator {
        RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler)
            .with_thresholds(0.95, 0.7)
    }

    #[test]
    fn cartesian_pipeline_finds_all_true_links() {
        let (external, local) = small_dataset();
        let cmp = comparator();
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&external, &local);
        assert_eq!(result.comparisons, 20);
        assert_eq!(result.naive_pairs, 20);
        assert_eq!(result.reduction_ratio, 0.0);
        assert_eq!(result.matches.len(), 4);
        let pairs = result.matched_pairs();
        assert!(pairs.iter().all(|(e, l)| e
            .as_iri()
            .unwrap()
            .ends_with(&l.as_iri().unwrap()[l.as_iri().unwrap().len() - 1..])));
    }

    #[test]
    fn blocking_reduces_comparisons_without_losing_links() {
        let (external, local) = small_dataset();
        let cmp = comparator();
        let blocker = StandardBlocker::new(BlockingKey::per_side(EXT_PN, LOC_PN, 4));
        let result = LinkagePipeline::new(&blocker, &cmp).run(&external, &local);
        assert!(result.comparisons < 20);
        assert!(result.reduction_ratio > 0.0);
        assert_eq!(result.matches.len(), 4);
    }

    #[test]
    fn run_on_stores_matches_run_on_records() {
        let (external, local) = small_dataset();
        let cmp = comparator();
        let pipeline = LinkagePipeline::new(&CartesianBlocker, &cmp);
        let from_records = pipeline.run(&external, &local);
        let from_stores = pipeline.run_stores(
            &RecordStore::from_records(&external),
            &RecordStore::from_records(&local),
        );
        assert_eq!(from_records, from_stores);
    }

    #[test]
    fn possible_matches_are_reported_separately() {
        let (mut external, local) = small_dataset();
        external.push(ext_record(4, "CRCW0805-10X")); // near-miss of local 0
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler)
            .with_thresholds(0.99, 0.9);
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&external, &local);
        assert!(!result.possible.is_empty());
        assert!(result
            .possible
            .iter()
            .all(|l| l.score < 0.99 && l.score >= 0.9));
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Build a dataset large enough to trigger the parallel path.
        let external: Vec<Record> = (0..40)
            .map(|i| ext_record(i, &format!("PN-{i:04}")))
            .collect();
        let local: Vec<Record> = (0..40)
            .map(|i| loc_record(i, &format!("PN-{i:04}")))
            .collect();
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein)
            .with_thresholds(0.99, 0.5);
        let serial = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&external, &local);
        let parallel = LinkagePipeline::new(&CartesianBlocker, &cmp)
            .with_threads(4)
            .run(&external, &local);
        // Index-sorted output makes the two runs byte-identical.
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_inputs_give_empty_result() {
        let cmp = comparator();
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp).run(&[], &[]);
        assert_eq!(result.comparisons, 0);
        assert!(result.matches.is_empty());
        assert_eq!(result.reduction_ratio, 0.0);
    }

    #[test]
    fn thread_count_is_clamped() {
        let cmp = comparator();
        let p = LinkagePipeline::new(&CartesianBlocker, &cmp).with_threads(0);
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn sharded_run_is_byte_identical_to_single_store() {
        let external: Vec<Record> = (0..40)
            .map(|i| ext_record(i, &format!("PN-{i:04}")))
            .collect();
        let local: Vec<Record> = (0..40)
            .map(|i| loc_record(i, &format!("PN-{i:04}")))
            .collect();
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein)
            .with_thresholds(0.99, 0.5);
        let external_store = RecordStore::from_records(&external);
        let serial = LinkagePipeline::new(&CartesianBlocker, &cmp)
            .run_stores(&external_store, &RecordStore::from_records(&local));
        // Shard counts chosen to cover even, uneven and empty shards,
        // serial and work-stealing comparison phases.
        for shard_count in [1, 3, 7, 41] {
            for threads in [1, 4] {
                let sharded = crate::shard::ShardedStore::from_records(&local, shard_count);
                let result = LinkagePipeline::new(&CartesianBlocker, &cmp)
                    .with_threads(threads)
                    .run_sharded(&external_store, &sharded);
                assert_eq!(
                    serial, result,
                    "{shard_count} shards, {threads} threads mismatch"
                );
            }
        }
    }

    #[test]
    fn sharded_run_on_empty_catalog() {
        let cmp = comparator();
        let sharded = crate::shard::ShardedStore::from_records(&[], 4);
        let result = LinkagePipeline::new(&CartesianBlocker, &cmp)
            .run_sharded(&RecordStore::from_records(&[]), &sharded);
        assert_eq!(result.comparisons, 0);
        assert!(result.matches.is_empty());
        assert_eq!(result.reduction_ratio, 0.0);
    }
}
