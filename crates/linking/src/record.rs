//! Flat record view of RDF data items.
//!
//! The linking method and the blocking baselines operate on attribute/value
//! records rather than triples. A [`Record`] is the flattened description of
//! one data item: its identifier plus a multimap of literal-valued
//! properties.
//!
//! `Record` is the **builder-side** representation: convenient to
//! construct and inspect one item at a time. The blockers and the
//! comparison engine run on the interned, columnar
//! [`RecordStore`](crate::store::RecordStore); convert a batch with
//! [`Record::into_store`](crate::store) or
//! [`RecordStore::from_records`](crate::store::RecordStore::from_records)
//! and see [`crate::store`] for the layout.

use classilink_rdf::{Graph, Term};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A flat record: an item identifier and its literal attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// The item this record describes.
    pub id: Term,
    /// Attribute values, keyed by property IRI; one property may have several
    /// values.
    pub attributes: BTreeMap<String, Vec<String>>,
}

impl Record {
    /// An empty record for `id`.
    pub fn new(id: Term) -> Self {
        Record {
            id,
            attributes: BTreeMap::new(),
        }
    }

    /// Add one attribute value.
    pub fn add(&mut self, property: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.attributes
            .entry(property.into())
            .or_default()
            .push(value.into());
        self
    }

    /// The first value of `property`, if any.
    pub fn first(&self, property: &str) -> Option<&str> {
        self.attributes
            .get(property)
            .and_then(|vs| vs.first())
            .map(String::as_str)
    }

    /// All values of `property`.
    pub fn values(&self, property: &str) -> &[String] {
        self.attributes
            .get(property)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Every value of every attribute concatenated (used by whole-record
    /// similarity and by blocking keys that span attributes).
    pub fn full_text(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        for values in self.attributes.values() {
            for v in values {
                parts.push(v);
            }
        }
        parts.join(" ")
    }

    /// Number of attribute values.
    pub fn value_count(&self) -> usize {
        self.attributes.values().map(Vec::len).sum()
    }

    /// Build the record of `item` from the literal triples of `graph`.
    pub fn from_graph(graph: &Graph, item: &Term) -> Self {
        let mut record = Record::new(item.clone());
        for triple in graph.triples_matching(Some(item), None, None) {
            if let (Some(p), Some(lit)) = (triple.predicate.as_iri(), triple.object.as_literal()) {
                record.add(p, lit.value.clone());
            }
        }
        record
    }

    /// Build records for every subject of `graph`.
    pub fn all_from_graph(graph: &Graph) -> Vec<Record> {
        graph
            .subjects()
            .iter()
            .map(|s| Record::from_graph(graph, s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classilink_rdf::Triple;

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        g.insert(Triple::literal(
            "http://e.org/p1",
            "http://e.org/v#pn",
            "CRCW0805-10K",
        ));
        g.insert(Triple::literal(
            "http://e.org/p1",
            "http://e.org/v#mfr",
            "Vishay",
        ));
        g.insert(Triple::literal(
            "http://e.org/p1",
            "http://e.org/v#mfr",
            "Vishay Intertech",
        ));
        g.insert(Triple::iris(
            "http://e.org/p1",
            "http://e.org/v#cls",
            "http://e.org/c#R",
        ));
        g.insert(Triple::literal(
            "http://e.org/p2",
            "http://e.org/v#pn",
            "T83A225",
        ));
        g
    }

    #[test]
    fn from_graph_collects_literals_only() {
        let g = sample_graph();
        let r = Record::from_graph(&g, &Term::iri("http://e.org/p1"));
        assert_eq!(r.value_count(), 3);
        assert_eq!(r.first("http://e.org/v#pn"), Some("CRCW0805-10K"));
        assert_eq!(r.values("http://e.org/v#mfr").len(), 2);
        assert!(r.values("http://e.org/v#cls").is_empty());
        assert!(r.first("http://e.org/v#unknown").is_none());
    }

    #[test]
    fn all_from_graph_builds_one_record_per_subject() {
        let g = sample_graph();
        let records = Record::all_from_graph(&g);
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn full_text_concatenates_values() {
        let mut r = Record::new(Term::iri("http://e.org/x"));
        r.add("http://e.org/v#a", "one")
            .add("http://e.org/v#b", "two");
        let text = r.full_text();
        assert!(text.contains("one") && text.contains("two"));
        assert_eq!(Record::new(Term::iri("http://e.org/y")).full_text(), "");
    }

    #[test]
    fn builder_style_adds() {
        let mut r = Record::new(Term::iri("http://e.org/x"));
        r.add("p", "v1").add("p", "v2");
        assert_eq!(r.values("p"), &["v1".to_string(), "v2".to_string()]);
        assert_eq!(r.value_count(), 2);
    }
}
