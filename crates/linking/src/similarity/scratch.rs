//! Reusable scratch buffers for the allocation-free similarity kernels.
//!
//! Every `*_with(scratch, a, b)` kernel variant (see
//! [`crate::similarity::edit`] and [`mod@crate::similarity::jaro`]) borrows
//! its working memory — char buffers, DP rows, match bitmaps — from a
//! [`SimScratch`] instead of heap-allocating per call. One scratch is
//! owned per comparison worker thread and amortises to zero allocations
//! once the buffers have grown to the longest strings seen, which is
//! what makes the pipeline's per-pair loop allocation-free in steady
//! state.
//!
//! A `SimScratch` carries no result state between calls: every kernel
//! fully re-initialises the prefix of each buffer it reads, so reusing
//! one scratch across measures, pairs and stores is always safe.

/// Reusable working memory for the scratch-buffer similarity kernels.
///
/// Create one per worker thread ([`SimScratch::new`] performs no
/// allocation; buffers grow on first use) and thread it through the
/// `*_with` kernel variants and
/// [`CompiledComparator::score`](crate::comparator::CompiledComparator::score).
#[derive(Debug, Clone, Default)]
pub struct SimScratch {
    /// Decoded scalar values of the left string (non-ASCII paths only).
    pub(crate) a_chars: Vec<char>,
    /// Decoded scalar values of the right string (non-ASCII paths only).
    pub(crate) b_chars: Vec<char>,
    /// DP row `i − 1` (edit-distance kernels).
    pub(crate) prev: Vec<usize>,
    /// DP row `i` (edit-distance kernels).
    pub(crate) curr: Vec<usize>,
    /// DP row `i − 2` (the Damerau transposition lookback).
    pub(crate) prev2: Vec<usize>,
    /// Per-position "already matched" bitmap over the right string (Jaro).
    pub(crate) b_matched: Vec<bool>,
    /// Matched scalar values of the left string, in match order (Jaro).
    pub(crate) matches: Vec<u32>,
    /// Per-byte position masks over the right string (the bit-parallel
    /// ASCII Jaro path): `positions[c]` has bit `j` set iff `b[j] == c`.
    /// Invariant: zeroed between calls (each kernel invocation clears
    /// exactly the entries it set).
    pub(crate) positions: Vec<u64>,
}

impl SimScratch {
    /// An empty scratch; buffers are lazily grown by the kernels.
    pub fn new() -> Self {
        Self::default()
    }
}
