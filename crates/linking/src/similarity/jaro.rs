//! Jaro and Jaro-Winkler similarities.
//!
//! Jaro similarity is the classic record-linkage measure introduced by Jaro
//! for the 1985 Tampa census matching (reference \[5\] of the paper); the
//! Winkler variant boosts strings sharing a common prefix.
//!
//! The `*_with(scratch, a, b)` kernels reuse a [`SimScratch`]'s match
//! bitmap and buffers (plus an ASCII byte fast path and equal/empty
//! early exits) and are bit-identical to the naive reference versions in
//! [`crate::similarity::naive`].

use super::scratch::SimScratch;

/// The Jaro score formula, shared by the two bitmap strategies:
/// `matches` holds a's matched symbols, `mismatched` the number of
/// positions where a's and b's matched sequences disagree.
fn jaro_score(a_len: usize, b_len: usize, matches: &[u32], mismatched: usize) -> f64 {
    let transpositions = mismatched as f64 / 2.0;
    let m = matches.len() as f64;
    (m / a_len as f64 + m / b_len as f64 + (m - transpositions) / m) / 3.0
}

/// Bit-parallel Jaro matching for ASCII byte slices with `|b| ≤ 64`:
/// one pass over `b` builds per-byte position masks, then each `a[i]`
/// resolves its match with three bitwise ops — `positions[a[i]] ∧
/// window ∧ ¬matched` — and takes the **lowest** set bit, which is
/// exactly the naive scan's "first unmatched equal position in the
/// window" rule, so matches, their order, and the transposition count
/// are identical to the reference implementation.
fn jaro_ascii_bitparallel(
    positions: &mut Vec<u64>,
    matches: &mut Vec<u32>,
    a: &[u8],
    b: &[u8],
) -> f64 {
    debug_assert!(b.len() <= 64);
    if positions.is_empty() {
        positions.resize(256, 0);
    }
    for (j, &cb) in b.iter().enumerate() {
        positions[cb as usize] |= 1u64 << j;
    }
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched: u64 = 0;
    matches.clear();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(b.len());
        if lo >= hi {
            continue;
        }
        let window = (u64::MAX >> (64 - (hi - lo))) << lo;
        let available = positions[ca as usize] & window & !b_matched;
        if available != 0 {
            b_matched |= available & available.wrapping_neg(); // lowest bit
            matches.push(ca as u32);
        }
    }
    // Restore the zeroed-between-calls invariant (duplicates are fine:
    // zeroing is idempotent).
    for &cb in b {
        positions[cb as usize] = 0;
    }
    if matches.is_empty() {
        return 0.0;
    }
    let mut mismatched = 0usize;
    let mut next_match = 0usize;
    let mut mask = b_matched;
    while mask != 0 {
        let j = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        if u32::from(b[j]) != matches[next_match] {
            mismatched += 1;
        }
        next_match += 1;
    }
    jaro_score(a.len(), b.len(), matches, mismatched)
}

/// Jaro over symbol slices with the right side's "already matched"
/// bitmap packed into one `u64` — the fast path for `|b| ≤ 64`, which
/// covers essentially every attribute value. Bit-identical to the
/// `Vec<bool>` strategy: same window scan, same first-free-match rule,
/// same in-order transposition pairing.
fn jaro_symbols_bitmask<T: Copy + PartialEq + Into<u32>>(
    matches: &mut Vec<u32>,
    a: &[T],
    b: &[T],
) -> f64 {
    debug_assert!(b.len() <= 64);
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched: u64 = 0;
    matches.clear();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(b.len());
        if lo >= hi {
            // a's tail lies beyond b's window entirely.
            continue;
        }
        for (offset, &cb) in b[lo..hi].iter().enumerate() {
            let j = lo + offset;
            if b_matched & (1u64 << j) == 0 && cb == ca {
                b_matched |= 1u64 << j;
                matches.push(ca.into());
                break;
            }
        }
    }
    if matches.is_empty() {
        return 0.0;
    }
    // Count transpositions: walk b's matched symbols in b order (set
    // bits, ascending) and compare against a's matches.
    let mut mismatched = 0usize;
    let mut next_match = 0usize;
    let mut mask = b_matched;
    while mask != 0 {
        let j = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        if b[j].into() != matches[next_match] {
            mismatched += 1;
        }
        next_match += 1;
    }
    jaro_score(a.len(), b.len(), matches, mismatched)
}

/// Jaro over decoded symbol slices, with the match bitmap and the
/// matched-symbol buffer borrowed from the scratch (the general path
/// for right strings longer than 64 symbols). Symbols are widened
/// to `u32` so byte and char inputs share one implementation.
fn jaro_symbols<T: Copy + PartialEq + Into<u32>>(
    b_matched: &mut Vec<bool>,
    matches: &mut Vec<u32>,
    a: &[T],
    b: &[T],
) -> f64 {
    if b.len() <= 64 {
        return jaro_symbols_bitmask(matches, a, b);
    }
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    b_matched.clear();
    b_matched.resize(b.len(), false);
    matches.clear();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                b_matched[j] = true;
                matches.push(ca.into());
                break;
            }
        }
    }
    if matches.is_empty() {
        return 0.0;
    }
    // Count transpositions: walk b's matched symbols in order and compare
    // against a's matches (the naive version materialises `b_matches`
    // first; pairing in place is the same zip).
    let mut mismatched = 0usize;
    let mut next_match = 0usize;
    for (j, &flag) in b_matched.iter().enumerate() {
        if flag {
            if b[j].into() != matches[next_match] {
                mismatched += 1;
            }
            next_match += 1;
        }
    }
    jaro_score(a.len(), b.len(), matches, mismatched)
}

/// The Jaro similarity between two strings, in `[0, 1]`, using `scratch`
/// for the match bitmap and buffers.
pub fn jaro_with(scratch: &mut SimScratch, a: &str, b: &str) -> f64 {
    if a == b {
        // Covers two empty strings (1.0 by convention) and the common
        // identical-value case without touching the buffers.
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let SimScratch {
        a_chars,
        b_chars,
        b_matched,
        matches,
        positions,
        ..
    } = scratch;
    if a.is_ascii() && b.is_ascii() {
        if b.len() <= 64 {
            jaro_ascii_bitparallel(positions, matches, a.as_bytes(), b.as_bytes())
        } else {
            jaro_symbols(b_matched, matches, a.as_bytes(), b.as_bytes())
        }
    } else {
        a_chars.clear();
        a_chars.extend(a.chars());
        b_chars.clear();
        b_chars.extend(b.chars());
        jaro_symbols(b_matched, matches, a_chars.as_slice(), b_chars.as_slice())
    }
}

/// The Jaro-Winkler similarity (standard 0.1 scale, 4-char maximum
/// prefix), using `scratch` for all working memory.
pub fn jaro_winkler_with(scratch: &mut SimScratch, a: &str, b: &str) -> f64 {
    let base = jaro_with(scratch, a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    base + prefix * 0.1 * (1.0 - base)
}

/// The Jaro similarity between two strings, in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    jaro_with(&mut SimScratch::new(), a, b)
}

/// The Jaro-Winkler similarity: Jaro boosted by the length of the common
/// prefix (up to 4 characters) with the standard scaling factor 0.1.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(&mut SimScratch::new(), a, b)
}

/// Jaro-Winkler with an explicit prefix scaling factor and maximum prefix
/// length. The scaling factor is clamped to `[0, 0.25]` so the result stays
/// within `[0, 1]`.
pub fn jaro_winkler_params(a: &str, b: &str, prefix_scale: f64, max_prefix: usize) -> f64 {
    let base = jaro(a, b);
    let scale = prefix_scale.clamp(0.0, 0.25);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(max_prefix)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    base + prefix * scale * (1.0 - base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn textbook_values() {
        // Classic examples from the record-linkage literature.
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.767));
        assert!(close(jaro("JELLYFISH", "SMELLYFISH"), 0.896));
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.961));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.813));
    }

    #[test]
    fn identity_and_disjoint() {
        assert_eq!(jaro("CRCW0805", "CRCW0805"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
    }

    #[test]
    fn winkler_boosts_shared_prefix() {
        let j = jaro("CRCW0805", "CRCW0812");
        let jw = jaro_winkler("CRCW0805", "CRCW0812");
        assert!(jw > j);
        // No shared prefix → no boost.
        assert_eq!(jaro("XDELTA", "DELTAX"), jaro_winkler("XDELTA", "DELTAX"));
    }

    #[test]
    fn custom_prefix_scale_is_clamped() {
        let huge = jaro_winkler_params("prefix-match", "prefix-xxxxx", 5.0, 4);
        assert!(huge <= 1.0);
        let none = jaro_winkler_params("prefix-match", "prefix-xxxxx", 0.0, 4);
        assert!(close(none, jaro("prefix-match", "prefix-xxxxx")));
    }

    #[test]
    fn single_char_strings() {
        assert_eq!(jaro("a", "a"), 1.0);
        assert_eq!(jaro("a", "b"), 0.0);
    }

    #[test]
    fn scratch_reuse_does_not_leak_matches() {
        // A long pair followed by a short pair: stale bitmap/match state
        // from the first call must not affect the second.
        let mut scratch = SimScratch::new();
        assert!(jaro_with(&mut scratch, "JELLYFISH", "SMELLYFISH") > 0.8);
        assert_eq!(jaro_with(&mut scratch, "a", "b"), 0.0);
        assert_eq!(jaro_with(&mut scratch, "ab", "ab"), 1.0);
        assert!(close(jaro_with(&mut scratch, "MARTHA", "MARHTA"), 0.944));
    }

    proptest! {
        /// Jaro and Jaro-Winkler stay within [0, 1], are symmetric, and
        /// Winkler never decreases the Jaro score.
        #[test]
        fn prop_jaro_properties(a in "[a-zA-Z0-9]{0,15}", b in "[a-zA-Z0-9]{0,15}") {
            let j_ab = jaro(&a, &b);
            let j_ba = jaro(&b, &a);
            prop_assert!((0.0..=1.0).contains(&j_ab));
            prop_assert!((j_ab - j_ba).abs() < 1e-9);
            let jw = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&jw));
            prop_assert!(jw + 1e-9 >= j_ab);
            prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-9 || a.is_empty());
        }
    }
}
