//! Jaro and Jaro-Winkler similarities.
//!
//! Jaro similarity is the classic record-linkage measure introduced by Jaro
//! for the 1985 Tampa census matching (reference \[5\] of the paper); the
//! Winkler variant boosts strings sharing a common prefix.

/// The Jaro similarity between two strings, in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut matches: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == *ca {
                b_matched[j] = true;
                matches.push(*ca);
                break;
            }
        }
    }
    if matches.is_empty() {
        return 0.0;
    }
    // Count transpositions: compare matched characters in order.
    let b_matches: Vec<char> = b
        .iter()
        .zip(b_matched.iter())
        .filter_map(|(c, m)| m.then_some(*c))
        .collect();
    let transpositions = matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = matches.len() as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions) / m) / 3.0
}

/// The Jaro-Winkler similarity: Jaro boosted by the length of the common
/// prefix (up to 4 characters) with the standard scaling factor 0.1.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(a, b, 0.1, 4)
}

/// Jaro-Winkler with an explicit prefix scaling factor and maximum prefix
/// length. The scaling factor is clamped to `[0, 0.25]` so the result stays
/// within `[0, 1]`.
pub fn jaro_winkler_with(a: &str, b: &str, prefix_scale: f64, max_prefix: usize) -> f64 {
    let base = jaro(a, b);
    let scale = prefix_scale.clamp(0.0, 0.25);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(max_prefix)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    base + prefix * scale * (1.0 - base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn textbook_values() {
        // Classic examples from the record-linkage literature.
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.767));
        assert!(close(jaro("JELLYFISH", "SMELLYFISH"), 0.896));
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.961));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.813));
    }

    #[test]
    fn identity_and_disjoint() {
        assert_eq!(jaro("CRCW0805", "CRCW0805"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
    }

    #[test]
    fn winkler_boosts_shared_prefix() {
        let j = jaro("CRCW0805", "CRCW0812");
        let jw = jaro_winkler("CRCW0805", "CRCW0812");
        assert!(jw > j);
        // No shared prefix → no boost.
        assert_eq!(jaro("XDELTA", "DELTAX"), jaro_winkler("XDELTA", "DELTAX"));
    }

    #[test]
    fn custom_prefix_scale_is_clamped() {
        let huge = jaro_winkler_with("prefix-match", "prefix-xxxxx", 5.0, 4);
        assert!(huge <= 1.0);
        let none = jaro_winkler_with("prefix-match", "prefix-xxxxx", 0.0, 4);
        assert!(close(none, jaro("prefix-match", "prefix-xxxxx")));
    }

    #[test]
    fn single_char_strings() {
        assert_eq!(jaro("a", "a"), 1.0);
        assert_eq!(jaro("a", "b"), 0.0);
    }

    proptest! {
        /// Jaro and Jaro-Winkler stay within [0, 1], are symmetric, and
        /// Winkler never decreases the Jaro score.
        #[test]
        fn prop_jaro_properties(a in "[a-zA-Z0-9]{0,15}", b in "[a-zA-Z0-9]{0,15}") {
            let j_ab = jaro(&a, &b);
            let j_ba = jaro(&b, &a);
            prop_assert!((0.0..=1.0).contains(&j_ab));
            prop_assert!((j_ab - j_ba).abs() < 1e-9);
            let jw = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&jw));
            prop_assert!(jw + 1e-9 >= j_ab);
            prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-9 || a.is_empty());
        }
    }
}
