//! Edit-distance based similarities (Levenshtein, Damerau-Levenshtein).

/// The Levenshtein edit distance between two strings (insertions, deletions,
/// substitutions each cost 1), computed over Unicode scalar values.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row dynamic programming.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitution_cost = if ca == cb { 0 } else { 1 };
            current[j + 1] = (prev[j + 1] + 1)
                .min(current[j] + 1)
                .min(prev[j] + substitution_cost);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// Levenshtein distance normalised into a similarity in `[0, 1]`:
/// `1 − distance / max(|a|, |b|)`. Two empty strings are fully similar.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// The Damerau-Levenshtein distance (restricted / "optimal string alignment"
/// variant): like Levenshtein but a transposition of two adjacent characters
/// counts as a single edit.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let width = b.len() + 1;
    let mut d = vec![0usize; (a.len() + 1) * width];
    for i in 0..=a.len() {
        d[i * width] = i;
    }
    for (j, cell) in d.iter_mut().enumerate().take(b.len() + 1) {
        *cell = j;
    }
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            let cost = if a[i - 1] == b[j - 1] { 0 } else { 1 };
            let mut best = (d[(i - 1) * width + j] + 1)
                .min(d[i * width + j - 1] + 1)
                .min(d[(i - 1) * width + j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[(i - 2) * width + j - 2] + 1);
            }
            d[i * width + j] = best;
        }
    }
    d[a.len() * width + b.len()]
}

/// Damerau-Levenshtein distance normalised into a similarity in `[0, 1]`.
pub fn damerau_levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - damerau_levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_levenshtein_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn part_number_typo_distance() {
        assert_eq!(levenshtein("CRCW0805", "CRCW0806"), 1);
        assert_eq!(levenshtein("T83A225K", "T83A225"), 1);
        assert!(levenshtein_similarity("CRCW0805", "CRCW0806") > 0.85);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        assert_eq!(damerau_levenshtein_similarity("", ""), 1.0);
    }

    #[test]
    fn damerau_counts_transposition_as_one() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("CRCW0850", "CRCW0805"), 1);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
        assert_eq!(damerau_levenshtein("", "ab"), 2);
    }

    #[test]
    fn unicode_is_counted_per_scalar() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("résistance", "resistance"), 1);
    }

    proptest! {
        /// Distance axioms on random strings: identity, symmetry, triangle
        /// inequality, and the Damerau distance never exceeds Levenshtein.
        #[test]
        fn prop_distance_axioms(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
            prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        }

        /// The distance is bounded by the length of the longer string.
        #[test]
        fn prop_distance_bounded(a in "[a-z]{0,15}", b in "[a-z]{0,15}") {
            let d = levenshtein(&a, &b);
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
        }
    }
}
