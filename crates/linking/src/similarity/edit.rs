//! Edit-distance based similarities (Levenshtein, Damerau-Levenshtein).
//!
//! Each measure comes in two forms: the classic allocating entry points
//! (`levenshtein(a, b)`, …) and the scratch-buffer kernels
//! (`levenshtein_with(scratch, a, b)`, …) the comparison hot path uses.
//! The kernels borrow their DP rows and char buffers from a
//! [`SimScratch`], take an ASCII byte-slice fast path when both inputs
//! are ASCII (no char decode), trim common prefixes/suffixes, and
//! early-exit on equal or empty inputs — while staying **bit-identical**
//! to the naive reference implementations (asserted by the equivalence
//! property tests against [`crate::similarity::naive`]).

use super::scratch::SimScratch;

/// Drop the common prefix and suffix of two slices (edit operations can
/// only occur in the differing middle, so the Levenshtein distance of
/// the trimmed slices equals the distance of the originals).
fn trim_common<'s, T: PartialEq>(a: &'s [T], b: &'s [T]) -> (&'s [T], &'s [T]) {
    let prefix = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    let (a, b) = (&a[prefix..], &b[prefix..]);
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    (&a[..a.len() - suffix], &b[..b.len() - suffix])
}

/// Two-row Levenshtein DP over already-trimmed, non-empty slices.
fn levenshtein_rows<T: PartialEq>(
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
    a: &[T],
    b: &[T],
) -> usize {
    prev.clear();
    prev.extend(0..=b.len());
    curr.clear();
    curr.resize(b.len() + 1, 0);
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitution_cost = if ca == cb { 0 } else { 1 };
            curr[j + 1] = (prev[j + 1] + 1)
                .min(curr[j] + 1)
                .min(prev[j] + substitution_cost);
        }
        std::mem::swap(prev, curr);
    }
    prev[b.len()]
}

/// The Levenshtein edit distance between two strings (insertions,
/// deletions, substitutions each cost 1), computed over Unicode scalar
/// values, using `scratch` for all working memory.
pub fn levenshtein_with(scratch: &mut SimScratch, a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    let SimScratch {
        a_chars,
        b_chars,
        prev,
        curr,
        ..
    } = scratch;
    if a.is_ascii() && b.is_ascii() {
        let (a, b) = trim_common(a.as_bytes(), b.as_bytes());
        if a.is_empty() || b.is_empty() {
            return a.len().max(b.len());
        }
        levenshtein_rows(prev, curr, a, b)
    } else {
        a_chars.clear();
        a_chars.extend(a.chars());
        b_chars.clear();
        b_chars.extend(b.chars());
        let (a, b) = trim_common(a_chars.as_slice(), b_chars.as_slice());
        if a.is_empty() || b.is_empty() {
            return a.len().max(b.len());
        }
        levenshtein_rows(prev, curr, a, b)
    }
}

/// The number of Unicode scalar values of `s` (free for ASCII input).
fn scalar_len(s: &str) -> usize {
    if s.is_ascii() {
        s.len()
    } else {
        s.chars().count()
    }
}

/// Levenshtein similarity in `[0, 1]` (`1 − distance / max(|a|, |b|)`),
/// using `scratch` for all working memory. Two empty strings are fully
/// similar.
pub fn levenshtein_similarity_with(scratch: &mut SimScratch, a: &str, b: &str) -> f64 {
    let max_len = scalar_len(a).max(scalar_len(b));
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein_with(scratch, a, b) as f64 / max_len as f64
}

/// Three-row Damerau (optimal string alignment) DP over non-empty
/// slices: row `i` needs rows `i − 1` and `i − 2` only.
fn damerau_rows<T: PartialEq>(
    prev2: &mut Vec<usize>,
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
    a: &[T],
    b: &[T],
) -> usize {
    prev.clear();
    prev.extend(0..=b.len());
    prev2.clear();
    prev2.resize(b.len() + 1, 0);
    curr.clear();
    curr.resize(b.len() + 1, 0);
    for i in 1..=a.len() {
        curr[0] = i;
        for j in 1..=b.len() {
            let cost = if a[i - 1] == b[j - 1] { 0 } else { 1 };
            let mut best = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + 1);
            }
            curr[j] = best;
        }
        // Rotate the rows: (i − 2, i − 1, i) ← (i − 1, i, scrap).
        std::mem::swap(prev2, prev);
        std::mem::swap(prev, curr);
    }
    prev[b.len()]
}

/// The Damerau-Levenshtein distance (restricted / "optimal string
/// alignment" variant): like Levenshtein but a transposition of two
/// adjacent characters counts as a single edit. Uses `scratch` for all
/// working memory.
pub fn damerau_levenshtein_with(scratch: &mut SimScratch, a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    if a.is_empty() || b.is_empty() {
        return scalar_len(a).max(scalar_len(b));
    }
    let SimScratch {
        a_chars,
        b_chars,
        prev,
        curr,
        prev2,
        ..
    } = scratch;
    if a.is_ascii() && b.is_ascii() {
        damerau_rows(prev2, prev, curr, a.as_bytes(), b.as_bytes())
    } else {
        a_chars.clear();
        a_chars.extend(a.chars());
        b_chars.clear();
        b_chars.extend(b.chars());
        damerau_rows(prev2, prev, curr, a_chars.as_slice(), b_chars.as_slice())
    }
}

/// Damerau-Levenshtein similarity in `[0, 1]`, using `scratch` for all
/// working memory.
pub fn damerau_levenshtein_similarity_with(scratch: &mut SimScratch, a: &str, b: &str) -> f64 {
    let max_len = scalar_len(a).max(scalar_len(b));
    if max_len == 0 {
        return 1.0;
    }
    1.0 - damerau_levenshtein_with(scratch, a, b) as f64 / max_len as f64
}

/// The Levenshtein edit distance between two strings (insertions, deletions,
/// substitutions each cost 1), computed over Unicode scalar values.
pub fn levenshtein(a: &str, b: &str) -> usize {
    levenshtein_with(&mut SimScratch::new(), a, b)
}

/// Levenshtein distance normalised into a similarity in `[0, 1]`:
/// `1 − distance / max(|a|, |b|)`. Two empty strings are fully similar.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    levenshtein_similarity_with(&mut SimScratch::new(), a, b)
}

/// The Damerau-Levenshtein distance (restricted / "optimal string alignment"
/// variant): like Levenshtein but a transposition of two adjacent characters
/// counts as a single edit.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    damerau_levenshtein_with(&mut SimScratch::new(), a, b)
}

/// Damerau-Levenshtein distance normalised into a similarity in `[0, 1]`.
pub fn damerau_levenshtein_similarity(a: &str, b: &str) -> f64 {
    damerau_levenshtein_similarity_with(&mut SimScratch::new(), a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_levenshtein_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn part_number_typo_distance() {
        assert_eq!(levenshtein("CRCW0805", "CRCW0806"), 1);
        assert_eq!(levenshtein("T83A225K", "T83A225"), 1);
        assert!(levenshtein_similarity("CRCW0805", "CRCW0806") > 0.85);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        assert_eq!(damerau_levenshtein_similarity("", ""), 1.0);
    }

    #[test]
    fn damerau_counts_transposition_as_one() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("CRCW0850", "CRCW0805"), 1);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
        assert_eq!(damerau_levenshtein("", "ab"), 2);
    }

    #[test]
    fn unicode_is_counted_per_scalar() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("résistance", "resistance"), 1);
    }

    #[test]
    fn scratch_reuse_across_measures_and_lengths() {
        // One scratch, many calls of varying length and script: results
        // must not depend on what the previous call left in the buffers.
        let mut scratch = SimScratch::new();
        assert_eq!(levenshtein_with(&mut scratch, "kitten", "sitting"), 3);
        assert_eq!(levenshtein_with(&mut scratch, "a", "ab"), 1);
        assert_eq!(damerau_levenshtein_with(&mut scratch, "ca", "ac"), 1);
        assert_eq!(levenshtein_with(&mut scratch, "café", "cafe"), 1);
        assert_eq!(levenshtein_with(&mut scratch, "", ""), 0);
        assert_eq!(
            damerau_levenshtein_with(&mut scratch, "CRCW0850", "CRCW0805"),
            1
        );
        assert_eq!(levenshtein_with(&mut scratch, "kitten", "sitting"), 3);
    }

    proptest! {
        /// Distance axioms on random strings: identity, symmetry, triangle
        /// inequality, and the Damerau distance never exceeds Levenshtein.
        #[test]
        fn prop_distance_axioms(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
            prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        }

        /// The distance is bounded by the length of the longer string.
        #[test]
        fn prop_distance_bounded(a in "[a-z]{0,15}", b in "[a-z]{0,15}") {
            let d = levenshtein(&a, &b);
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
        }
    }
}
