//! Token- and set-based similarities: Jaccard, Dice, overlap, Monge-Elkan and
//! TF-IDF cosine.
//!
//! # Tokenisation and bigram conventions
//!
//! All token measures share one tokenisation: split on non-alphanumeric
//! characters, drop empty fragments, lowercase each token.
//!
//! All character-bigram measures share one **short-string convention**:
//! bigrams are adjacent pairs of the *lowercased*
//! string's scalar values, and a string with fewer than two scalar
//! values has **no** bigrams (it is never smuggled in as a unigram, so a
//! unigram can never "intersect" a bigram). When *both* sides of a
//! bigram measure have no bigrams the measure falls back to lowercased
//! string equality (`1.0` if equal, `0.0` otherwise); when exactly one
//! side has no bigrams the similarity is `0.0`. The same convention is
//! shared verbatim by the precomputed token-index kernels in
//! [`crate::token_index`].

use super::jaro::jaro_winkler;
use std::collections::{HashMap, HashSet};

/// The shared tokenisation: lowercased alphanumeric runs, in order of
/// appearance (duplicates preserved).
pub(crate) fn tokens(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Adjacent scalar-value pairs of the lowercased string — the shared
/// bigram alphabet of [`char_bigrams`] and the token-index kernels.
pub(crate) fn bigram_pairs(s: &str) -> impl Iterator<Item = (char, char)> {
    let lowered: Vec<char> = s.to_lowercase().chars().collect();
    (1..lowered.len()).map(move |i| (lowered[i - 1], lowered[i]))
}

/// The character bigrams of the lowercased string. A string with fewer
/// than two scalar values (after lowercasing) has **no** bigrams — see
/// the short-string convention in the [module docs](self).
pub(crate) fn char_bigrams(s: &str) -> Vec<String> {
    bigram_pairs(s)
        .map(|(a, b)| {
            let mut gram = String::with_capacity(a.len_utf8() + b.len_utf8());
            gram.push(a);
            gram.push(b);
            gram
        })
        .collect()
}

/// Case-insensitive string equality without allocating (compares the
/// `char::to_lowercase` expansions) — the bigram measures' tie-breaker
/// when neither side has any bigram.
pub(crate) fn lowercase_eq(a: &str, b: &str) -> bool {
    a.chars()
        .flat_map(char::to_lowercase)
        .eq(b.chars().flat_map(char::to_lowercase))
}

fn jaccard_of_sets(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    if union == 0.0 {
        1.0
    } else {
        intersection / union
    }
}

/// Jaccard similarity over lower-cased alphanumeric tokens.
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = tokens(a).into_iter().collect();
    let sb: HashSet<String> = tokens(b).into_iter().collect();
    jaccard_of_sets(&sa, &sb)
}

/// Jaccard similarity over character bigrams (short-string convention:
/// see the [module docs](self)).
pub fn jaccard_chars(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = char_bigrams(a).into_iter().collect();
    let sb: HashSet<String> = char_bigrams(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return if lowercase_eq(a, b) { 1.0 } else { 0.0 };
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    jaccard_of_sets(&sa, &sb)
}

/// Dice coefficient over character bigrams: `2·|A∩B| / (|A| + |B|)`
/// (short-string convention: see the [module docs](self)).
pub fn dice_bigrams(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = char_bigrams(a).into_iter().collect();
    let sb: HashSet<String> = char_bigrams(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return if lowercase_eq(a, b) { 1.0 } else { 0.0 };
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let intersection = sa.intersection(&sb).count() as f64;
    2.0 * intersection / (sa.len() + sb.len()) as f64
}

/// Overlap coefficient over tokens: `|A∩B| / min(|A|, |B|)`.
pub fn overlap_tokens(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = tokens(a).into_iter().collect();
    let sb: HashSet<String> = tokens(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let min = sa.len().min(sb.len()) as f64;
    if min == 0.0 {
        return 0.0;
    }
    sa.intersection(&sb).count() as f64 / min
}

/// Monge-Elkan similarity: for each token of `a`, take its best
/// Jaro-Winkler match among the tokens of `b`, then average; symmetrised by
/// taking the mean of both directions.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let directed = |xs: &[String], ys: &[String]| -> f64 {
        xs.iter()
            .map(|x| ys.iter().map(|y| jaro_winkler(x, y)).fold(0.0f64, f64::max))
            .sum::<f64>()
            / xs.len() as f64
    };
    (directed(&ta, &tb) + directed(&tb, &ta)) / 2.0
}

/// A TF-IDF vector-space model built over a corpus of strings, used to
/// compute soft cosine similarities that down-weight ubiquitous tokens
/// (e.g. a manufacturer name appearing in every part description).
#[derive(Debug, Clone, Default)]
pub struct TfIdfModel {
    document_count: usize,
    document_frequency: HashMap<String, usize>,
}

impl TfIdfModel {
    /// Build the model from a corpus of documents.
    pub fn fit<'a>(corpus: impl IntoIterator<Item = &'a str>) -> Self {
        let mut document_frequency: HashMap<String, usize> = HashMap::new();
        let mut document_count = 0usize;
        for doc in corpus {
            document_count += 1;
            let unique: HashSet<String> = tokens(doc).into_iter().collect();
            for t in unique {
                *document_frequency.entry(t).or_insert(0) += 1;
            }
        }
        TfIdfModel {
            document_count,
            document_frequency,
        }
    }

    /// Number of documents the model was fitted on.
    pub fn document_count(&self) -> usize {
        self.document_count
    }

    /// The smoothed inverse document frequency of a token.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.document_frequency.get(token).copied().unwrap_or(0);
        (((self.document_count + 1) as f64) / ((df + 1) as f64)).ln() + 1.0
    }

    fn vector(&self, s: &str) -> HashMap<String, f64> {
        let mut tf: HashMap<String, f64> = HashMap::new();
        for t in tokens(s) {
            *tf.entry(t).or_insert(0.0) += 1.0;
        }
        for (token, value) in tf.iter_mut() {
            *value *= self.idf(token);
        }
        tf
    }

    /// TF-IDF cosine similarity between two strings under this model.
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let va = self.vector(a);
        let vb = self.vector(b);
        if va.is_empty() && vb.is_empty() {
            return 1.0;
        }
        let dot: f64 = va
            .iter()
            .filter_map(|(t, x)| vb.get(t).map(|y| x * y))
            .sum();
        let norm_a: f64 = va.values().map(|x| x * x).sum::<f64>().sqrt();
        let norm_b: f64 = vb.values().map(|x| x * x).sum::<f64>().sqrt();
        if norm_a == 0.0 || norm_b == 0.0 {
            return 0.0;
        }
        (dot / (norm_a * norm_b)).clamp(0.0, 1.0)
    }
}

/// TF-IDF cosine with a degenerate model (every token has equal weight).
/// Convenient when no corpus is available; equivalent to plain cosine over
/// token counts.
pub fn cosine_tfidf(a: &str, b: &str) -> f64 {
    TfIdfModel::default().cosine(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn jaccard_tokens_basic() {
        assert_eq!(
            jaccard_tokens("fixed film resistor", "fixed film resistor"),
            1.0
        );
        assert_eq!(jaccard_tokens("fixed film", "film fixed"), 1.0);
        assert!((jaccard_tokens("fixed film resistor", "film capacitor") - 0.25).abs() < 1e-12);
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("abc", ""), 0.0);
    }

    #[test]
    fn jaccard_and_dice_chars() {
        assert_eq!(jaccard_chars("night", "night"), 1.0);
        assert!(jaccard_chars("night", "nacht") < 1.0);
        assert!(jaccard_chars("night", "nacht") > 0.0);
        assert!(dice_bigrams("night", "nacht") >= jaccard_chars("night", "nacht"));
        assert_eq!(dice_bigrams("", ""), 1.0);
        assert_eq!(dice_bigrams("a", "a"), 1.0);
    }

    #[test]
    fn short_string_convention() {
        // Fewer than two chars → no bigrams; never a unigram-vs-bigram
        // comparison.
        assert!(char_bigrams("a").is_empty());
        assert!(char_bigrams("").is_empty());
        assert_eq!(char_bigrams("ab"), vec!["ab".to_string()]);
        // Both sides bigram-less: lowercased equality decides.
        assert_eq!(dice_bigrams("a", "A"), 1.0);
        assert_eq!(jaccard_chars("a", "b"), 0.0);
        assert_eq!(jaccard_chars("a", ""), 0.0);
        // One side bigram-less: 0, not a unigram intersection.
        assert_eq!(dice_bigrams("a", "ab"), 0.0);
        assert_eq!(jaccard_chars("x", "xyz"), 0.0);
    }

    #[test]
    fn overlap_is_one_for_subset() {
        assert_eq!(overlap_tokens("fixed film resistor 10k", "fixed film"), 1.0);
        assert_eq!(overlap_tokens("abc", "xyz"), 0.0);
        assert_eq!(overlap_tokens("", ""), 1.0);
        assert_eq!(overlap_tokens("abc", ""), 0.0);
    }

    #[test]
    fn monge_elkan_tolerates_token_typos() {
        let a = "vishay fixed film resistor";
        let b = "vishai fixd film resistor";
        assert!(monge_elkan(a, b) > 0.9);
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("a", ""), 0.0);
        assert!(monge_elkan("abc def", "abc def") > 0.999);
    }

    #[test]
    fn tfidf_downweights_common_tokens() {
        let corpus = [
            "ACME fixed film resistor 10k",
            "ACME tantalum capacitor 22uF",
            "ACME wirewound resistor 5W",
            "ACME ceramic capacitor 100nF",
        ];
        let model = TfIdfModel::fit(corpus.iter().copied());
        assert_eq!(model.document_count(), 4);
        // "acme" appears everywhere → low idf; "tantalum" is rare → high idf.
        assert!(model.idf("acme") < model.idf("tantalum"));
        // Sharing only the ubiquitous token scores lower than sharing a rare one.
        let common_only = model.cosine("ACME bolt", "ACME nut");
        let rare_shared = model.cosine("tantalum capacitor", "tantalum 22uF");
        assert!(rare_shared > common_only);
    }

    #[test]
    fn plain_cosine_behaviour() {
        assert_eq!(cosine_tfidf("a b c", "a b c"), 1.0);
        assert_eq!(cosine_tfidf("", ""), 1.0);
        assert_eq!(cosine_tfidf("abc", ""), 0.0);
        assert!(cosine_tfidf("a b", "b c") > 0.0);
    }

    proptest! {
        /// Set-based measures stay within [0,1], are symmetric and reflexive.
        #[test]
        fn prop_token_measures(a in "[a-z0-9 ]{0,25}", b in "[a-z0-9 ]{0,25}") {
            for f in [jaccard_tokens, jaccard_chars, dice_bigrams, overlap_tokens, monge_elkan, cosine_tfidf] {
                let ab = f(&a, &b);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&ab));
                prop_assert!((ab - f(&b, &a)).abs() < 1e-9);
                prop_assert!((f(&a, &a) - 1.0).abs() < 1e-9);
            }
        }
    }
}
