//! Naive reference implementations of the similarity measures.
//!
//! These are the textbook, allocation-heavy versions the optimised
//! scratch-buffer kernels in [`super::edit`] and [`mod@super::jaro`] (and the
//! token-index merge kernels in [`crate::token_index`]) are verified
//! against: the equivalence test suites assert the optimised paths are
//! **bit-identical** to these on arbitrary Unicode input. They are not
//! part of the supported API surface and are hidden from the docs; use
//! the public functions in [`crate::similarity`] instead.

use std::collections::HashSet;

/// Reference Levenshtein distance: full char decode, fresh DP rows.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let substitution_cost = if ca == cb { 0 } else { 1 };
            current[j + 1] = (prev[j + 1] + 1)
                .min(current[j] + 1)
                .min(prev[j] + substitution_cost);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// Reference normalised Levenshtein similarity.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Reference Damerau-Levenshtein (optimal string alignment) distance:
/// the full `(|a|+1) × (|b|+1)` matrix.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let width = b.len() + 1;
    let mut d = vec![0usize; (a.len() + 1) * width];
    for i in 0..=a.len() {
        d[i * width] = i;
    }
    for (j, cell) in d.iter_mut().enumerate().take(b.len() + 1) {
        *cell = j;
    }
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            let cost = if a[i - 1] == b[j - 1] { 0 } else { 1 };
            let mut best = (d[(i - 1) * width + j] + 1)
                .min(d[i * width + j - 1] + 1)
                .min(d[(i - 1) * width + j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[(i - 2) * width + j - 2] + 1);
            }
            d[i * width + j] = best;
        }
    }
    d[a.len() * width + b.len()]
}

/// Reference normalised Damerau-Levenshtein similarity.
pub fn damerau_levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - damerau_levenshtein(a, b) as f64 / max_len as f64
}

/// Reference Jaro similarity: char decode, fresh match bitmap and match
/// vectors per call.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut matches: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == *ca {
                b_matched[j] = true;
                matches.push(*ca);
                break;
            }
        }
    }
    if matches.is_empty() {
        return 0.0;
    }
    let b_matches: Vec<char> = b
        .iter()
        .zip(b_matched.iter())
        .filter_map(|(c, m)| m.then_some(*c))
        .collect();
    let transpositions = matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = matches.len() as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions) / m) / 3.0
}

/// Reference Jaro-Winkler similarity (standard 0.1 scale, 4-char prefix).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let base = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    base + prefix * 0.1 * (1.0 - base)
}

/// Reference Jaccard over lower-cased alphanumeric tokens, built with
/// per-pair `HashSet<String>`s.
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = super::token::tokens(a).into_iter().collect();
    let sb: HashSet<String> = super::token::tokens(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    intersection / union
}

/// Reference Jaccard over character bigrams (per-pair `HashSet`s; the
/// short-string convention of `similarity::token`).
pub fn jaccard_chars(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = super::token::char_bigrams(a).into_iter().collect();
    let sb: HashSet<String> = super::token::char_bigrams(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return if super::token::lowercase_eq(a, b) {
            1.0
        } else {
            0.0
        };
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    sa.intersection(&sb).count() as f64 / sa.union(&sb).count() as f64
}

/// Reference Dice coefficient over character bigrams.
pub fn dice_bigrams(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = super::token::char_bigrams(a).into_iter().collect();
    let sb: HashSet<String> = super::token::char_bigrams(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return if super::token::lowercase_eq(a, b) {
            1.0
        } else {
            0.0
        };
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let intersection = sa.intersection(&sb).count() as f64;
    2.0 * intersection / (sa.len() + sb.len()) as f64
}

/// Reference Monge-Elkan: fresh token vectors, naive Jaro-Winkler per
/// token pair.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = super::token::tokens(a);
    let tb = super::token::tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let directed = |xs: &[String], ys: &[String]| -> f64 {
        xs.iter()
            .map(|x| ys.iter().map(|y| jaro_winkler(x, y)).fold(0.0f64, f64::max))
            .sum::<f64>()
            / xs.len() as f64
    };
    (directed(&ta, &tb) + directed(&tb, &ta)) / 2.0
}

/// Reference dispatch over [`super::SimilarityMeasure`].
pub fn compare(measure: super::SimilarityMeasure, a: &str, b: &str) -> f64 {
    use super::SimilarityMeasure as M;
    match measure {
        M::Levenshtein => levenshtein_similarity(a, b),
        M::DamerauLevenshtein => damerau_levenshtein_similarity(a, b),
        M::Jaro => jaro(a, b),
        M::JaroWinkler => jaro_winkler(a, b),
        M::JaccardTokens => jaccard_tokens(a, b),
        M::JaccardChars => jaccard_chars(a, b),
        M::DiceBigrams => dice_bigrams(a, b),
        M::MongeElkan => monge_elkan(a, b),
    }
}
