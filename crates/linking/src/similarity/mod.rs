//! String similarity measures used by the linking method.
//!
//! The paper assumes a downstream "linking method" that compares the
//! descriptions of two data items and computes a similarity between them
//! (section 1). This module provides the classic measures such a method
//! needs; every function returns a similarity in `[0, 1]`, where `1` means
//! identical.
//!
//! The comparison hot path uses the **scratch-buffer kernels** — the
//! `*_with(scratch, a, b)` variants threading a [`SimScratch`] through
//! [`edit`] and [`mod@jaro`] — and the precomputed token-index kernels of
//! [`crate::token_index`] for the set measures. The plain functions
//! re-exported here keep the classic one-call API (each allocates a
//! fresh scratch); [`naive`] holds the reference implementations the
//! kernels are equivalence-tested against.

pub mod edit;
pub mod jaro;
#[doc(hidden)]
pub mod naive;
pub mod scratch;
pub mod token;

pub use edit::{
    damerau_levenshtein, damerau_levenshtein_similarity, damerau_levenshtein_similarity_with,
    damerau_levenshtein_with, levenshtein, levenshtein_similarity, levenshtein_similarity_with,
    levenshtein_with,
};
pub use jaro::{jaro, jaro_winkler, jaro_winkler_params, jaro_winkler_with, jaro_with};
pub use scratch::SimScratch;
pub use token::{
    cosine_tfidf, dice_bigrams, jaccard_chars, jaccard_tokens, monge_elkan, overlap_tokens,
    TfIdfModel,
};

use serde::{Deserialize, Serialize};

/// A serialisable choice of string similarity measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SimilarityMeasure {
    /// Normalised Levenshtein similarity.
    #[default]
    Levenshtein,
    /// Normalised Damerau-Levenshtein similarity (transpositions count as one
    /// edit).
    DamerauLevenshtein,
    /// Jaro similarity.
    Jaro,
    /// Jaro-Winkler similarity (prefix-boosted Jaro).
    JaroWinkler,
    /// Jaccard similarity over whitespace tokens.
    JaccardTokens,
    /// Jaccard similarity over character bigrams.
    JaccardChars,
    /// Dice coefficient over character bigrams.
    DiceBigrams,
    /// Monge-Elkan: average best Jaro-Winkler match of each token.
    MongeElkan,
}

impl SimilarityMeasure {
    /// Compute the similarity between two strings with this measure.
    pub fn compare(&self, a: &str, b: &str) -> f64 {
        match self {
            SimilarityMeasure::Levenshtein => levenshtein_similarity(a, b),
            SimilarityMeasure::DamerauLevenshtein => damerau_levenshtein_similarity(a, b),
            SimilarityMeasure::Jaro => jaro(a, b),
            SimilarityMeasure::JaroWinkler => jaro_winkler(a, b),
            SimilarityMeasure::JaccardTokens => jaccard_tokens(a, b),
            SimilarityMeasure::JaccardChars => jaccard_chars(a, b),
            SimilarityMeasure::DiceBigrams => dice_bigrams(a, b),
            SimilarityMeasure::MongeElkan => monge_elkan(a, b),
        }
    }

    /// Compute the similarity using `scratch` for working memory.
    ///
    /// The edit/Jaro measures run allocation-free on the scratch
    /// kernels; the token/bigram measures still build per-pair sets (the
    /// allocation-free path for those is the precomputed
    /// [`TokenIndex`](crate::token_index::TokenIndex) used by
    /// [`CompiledComparator::score`](crate::comparator::CompiledComparator::score)).
    /// Results are bit-identical to [`Self::compare`].
    pub fn compare_with(&self, scratch: &mut scratch::SimScratch, a: &str, b: &str) -> f64 {
        match self {
            SimilarityMeasure::Levenshtein => levenshtein_similarity_with(scratch, a, b),
            SimilarityMeasure::DamerauLevenshtein => {
                damerau_levenshtein_similarity_with(scratch, a, b)
            }
            SimilarityMeasure::Jaro => jaro_with(scratch, a, b),
            SimilarityMeasure::JaroWinkler => jaro_winkler_with(scratch, a, b),
            SimilarityMeasure::JaccardTokens => jaccard_tokens(a, b),
            SimilarityMeasure::JaccardChars => jaccard_chars(a, b),
            SimilarityMeasure::DiceBigrams => dice_bigrams(a, b),
            SimilarityMeasure::MongeElkan => monge_elkan(a, b),
        }
    }

    /// All available measures (useful for benchmark sweeps).
    pub fn all() -> &'static [SimilarityMeasure] {
        &[
            SimilarityMeasure::Levenshtein,
            SimilarityMeasure::DamerauLevenshtein,
            SimilarityMeasure::Jaro,
            SimilarityMeasure::JaroWinkler,
            SimilarityMeasure::JaccardTokens,
            SimilarityMeasure::JaccardChars,
            SimilarityMeasure::DiceBigrams,
            SimilarityMeasure::MongeElkan,
        ]
    }

    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SimilarityMeasure::Levenshtein => "levenshtein",
            SimilarityMeasure::DamerauLevenshtein => "damerau-levenshtein",
            SimilarityMeasure::Jaro => "jaro",
            SimilarityMeasure::JaroWinkler => "jaro-winkler",
            SimilarityMeasure::JaccardTokens => "jaccard-tokens",
            SimilarityMeasure::JaccardChars => "jaccard-chars",
            SimilarityMeasure::DiceBigrams => "dice-bigrams",
            SimilarityMeasure::MongeElkan => "monge-elkan",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn every_measure_is_reflexive_and_named() {
        for m in SimilarityMeasure::all() {
            assert!(
                (m.compare("CRCW0805-10K", "CRCW0805-10K") - 1.0).abs() < 1e-9,
                "{} not reflexive",
                m.name()
            );
            assert!(!m.name().is_empty());
        }
        let names: std::collections::HashSet<_> =
            SimilarityMeasure::all().iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), SimilarityMeasure::all().len());
    }

    #[test]
    fn default_measure_is_levenshtein() {
        assert_eq!(SimilarityMeasure::default(), SimilarityMeasure::Levenshtein);
    }

    proptest! {
        /// All measures stay within [0, 1] and are symmetric on arbitrary input.
        #[test]
        fn prop_range_and_symmetry(a in "[a-zA-Z0-9 -]{0,20}", b in "[a-zA-Z0-9 -]{0,20}") {
            for m in SimilarityMeasure::all() {
                let ab = m.compare(&a, &b);
                let ba = m.compare(&b, &a);
                prop_assert!((0.0..=1.0).contains(&ab), "{} out of range: {}", m.name(), ab);
                prop_assert!((ab - ba).abs() < 1e-9, "{} not symmetric", m.name());
            }
        }
    }
}
