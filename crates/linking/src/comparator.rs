//! Record-pair comparison and match decisions.
//!
//! Once blocking (or the paper's classification rules) has produced candidate
//! pairs, a linking method compares the two descriptions and decides whether
//! they refer to the same real-world object. [`RecordComparator`] implements
//! the standard weighted-average scheme: per-attribute similarities combined
//! with weights, then thresholded into Match / Possible / NonMatch.

use crate::record::Record;
use crate::similarity::SimilarityMeasure;
use serde::{Deserialize, Serialize};

/// How one attribute pair contributes to the overall record similarity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeRule {
    /// Property IRI on the left (external) record.
    pub left_property: String,
    /// Property IRI on the right (local) record.
    pub right_property: String,
    /// Similarity measure for this attribute pair.
    pub measure: SimilarityMeasure,
    /// Relative weight (will be normalised over the rules that fired).
    pub weight: f64,
}

/// The outcome of comparing one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchDecision {
    /// The similarity exceeds the match threshold.
    Match,
    /// The similarity lies between the two thresholds.
    Possible,
    /// The similarity is below the non-match threshold.
    NonMatch,
}

/// The detailed result of one comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// The aggregated weighted similarity in `[0, 1]`.
    pub score: f64,
    /// The decision implied by the thresholds.
    pub decision: MatchDecision,
    /// Per-attribute-rule similarities (same order as the configured rules);
    /// `None` when one side had no value for the attribute.
    pub details: Vec<Option<f64>>,
}

/// Compares two records attribute by attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordComparator {
    /// The attribute comparison rules.
    pub rules: Vec<AttributeRule>,
    /// Score at or above which a pair is a [`MatchDecision::Match`].
    pub match_threshold: f64,
    /// Score below which a pair is a [`MatchDecision::NonMatch`].
    pub non_match_threshold: f64,
    /// When no configured attribute pair has values on both sides, fall back
    /// to comparing the records' full text with this measure.
    pub fallback: Option<SimilarityMeasure>,
}

impl RecordComparator {
    /// A comparator with the given attribute rules and default thresholds
    /// (match ≥ 0.85, non-match < 0.6).
    pub fn new(rules: Vec<AttributeRule>) -> Self {
        RecordComparator {
            rules,
            match_threshold: 0.85,
            non_match_threshold: 0.6,
            fallback: Some(SimilarityMeasure::MongeElkan),
        }
    }

    /// A single-attribute comparator (the common case for part numbers).
    pub fn single(
        left_property: impl Into<String>,
        right_property: impl Into<String>,
        measure: SimilarityMeasure,
    ) -> Self {
        Self::new(vec![AttributeRule {
            left_property: left_property.into(),
            right_property: right_property.into(),
            measure,
            weight: 1.0,
        }])
    }

    /// Set the decision thresholds (clamped so that `non_match ≤ match`).
    pub fn with_thresholds(mut self, match_threshold: f64, non_match_threshold: f64) -> Self {
        self.match_threshold = match_threshold.clamp(0.0, 1.0);
        self.non_match_threshold = non_match_threshold.clamp(0.0, self.match_threshold);
        self
    }

    /// Compare two records.
    pub fn compare(&self, left: &Record, right: &Record) -> Comparison {
        let mut details = Vec::with_capacity(self.rules.len());
        let mut weighted_sum = 0.0;
        let mut weight_total = 0.0;
        for rule in &self.rules {
            let left_values = left.values(&rule.left_property);
            let right_values = right.values(&rule.right_property);
            if left_values.is_empty() || right_values.is_empty() {
                details.push(None);
                continue;
            }
            // Best pairing across multi-valued attributes.
            let best = left_values
                .iter()
                .flat_map(|lv| {
                    right_values
                        .iter()
                        .map(move |rv| rule.measure.compare(lv, rv))
                })
                .fold(0.0f64, f64::max);
            details.push(Some(best));
            weighted_sum += best * rule.weight;
            weight_total += rule.weight;
        }
        let score = if weight_total > 0.0 {
            weighted_sum / weight_total
        } else if let Some(fallback) = self.fallback {
            fallback.compare(&left.full_text(), &right.full_text())
        } else {
            0.0
        };
        let decision = if score >= self.match_threshold {
            MatchDecision::Match
        } else if score < self.non_match_threshold {
            MatchDecision::NonMatch
        } else {
            MatchDecision::Possible
        };
        Comparison {
            score,
            decision,
            details,
        }
    }

    /// `true` when the pair is decided as a match.
    pub fn is_match(&self, left: &Record, right: &Record) -> bool {
        self.compare(left, right).decision == MatchDecision::Match
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use classilink_rdf::Term;

    const EXT_PN: &str = "http://provider.e.org/v#ref";
    const LOC_PN: &str = "http://local.e.org/v#partNumber";
    const LOC_LABEL: &str = "http://local.e.org/v#label";

    fn ext(pn: &str) -> Record {
        let mut r = Record::new(Term::iri("http://provider.e.org/item/1"));
        r.add(EXT_PN, pn);
        r
    }

    fn loc(pn: &str, label: &str) -> Record {
        let mut r = Record::new(Term::iri("http://local.e.org/prod/1"));
        r.add(LOC_PN, pn);
        r.add(LOC_LABEL, label);
        r
    }

    #[test]
    fn identical_part_numbers_match() {
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler);
        let c = cmp.compare(&ext("CRCW0805-10K"), &loc("CRCW0805-10K", "resistor"));
        assert_eq!(c.decision, MatchDecision::Match);
        assert_eq!(c.score, 1.0);
        assert_eq!(c.details, vec![Some(1.0)]);
        assert!(cmp.is_match(&ext("CRCW0805-10K"), &loc("CRCW0805-10K", "r")));
    }

    #[test]
    fn small_typo_is_still_a_match_large_difference_is_not() {
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler);
        let typo = cmp.compare(&ext("CRCW0805-10K"), &loc("CRCW0806-10K", "resistor"));
        assert_eq!(typo.decision, MatchDecision::Match);
        let different = cmp.compare(&ext("CRCW0805-10K"), &loc("T83A225K", "capacitor"));
        assert_eq!(different.decision, MatchDecision::NonMatch);
    }

    #[test]
    fn thresholds_partition_scores() {
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein)
            .with_thresholds(0.9, 0.5);
        let possible = cmp.compare(&ext("CRCW0805"), &loc("CRCW0899", "x"));
        assert_eq!(possible.decision, MatchDecision::Possible);
        assert!(possible.score < 0.9 && possible.score >= 0.5);
    }

    #[test]
    fn threshold_clamping() {
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Jaro)
            .with_thresholds(0.7, 0.9);
        assert!(cmp.non_match_threshold <= cmp.match_threshold);
        let cmp2 = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Jaro)
            .with_thresholds(5.0, -1.0);
        assert_eq!(cmp2.match_threshold, 1.0);
        assert_eq!(cmp2.non_match_threshold, 0.0);
    }

    #[test]
    fn multi_attribute_weighting() {
        let cmp = RecordComparator::new(vec![
            AttributeRule {
                left_property: EXT_PN.to_string(),
                right_property: LOC_PN.to_string(),
                measure: SimilarityMeasure::JaroWinkler,
                weight: 3.0,
            },
            AttributeRule {
                left_property: EXT_PN.to_string(),
                right_property: LOC_LABEL.to_string(),
                measure: SimilarityMeasure::JaccardTokens,
                weight: 1.0,
            },
        ]);
        let c = cmp.compare(&ext("CRCW0805-10K"), &loc("CRCW0805-10K", "unrelated text"));
        // pn similarity 1.0 (weight 3), label similarity 0 (weight 1) → 0.75.
        assert!((c.score - 0.75).abs() < 1e-9);
        assert_eq!(c.details.len(), 2);
    }

    #[test]
    fn missing_attributes_use_fallback() {
        let cmp = RecordComparator::single("http://nowhere.org/v#x", LOC_PN, SimilarityMeasure::Jaro);
        let c = cmp.compare(&ext("CRCW0805-10K"), &loc("CRCW0805-10K", "resistor"));
        assert_eq!(c.details, vec![None]);
        // Fallback Monge-Elkan over full text still sees the identical part number.
        assert!(c.score > 0.5);
        let strict = RecordComparator {
            fallback: None,
            ..cmp
        };
        let c2 = strict.compare(&ext("CRCW0805-10K"), &loc("CRCW0805-10K", "resistor"));
        assert_eq!(c2.score, 0.0);
        assert_eq!(c2.decision, MatchDecision::NonMatch);
    }

    #[test]
    fn multi_valued_attributes_take_best_pairing() {
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein);
        let mut left = Record::new(Term::iri("http://provider.e.org/item/2"));
        left.add(EXT_PN, "completely different");
        left.add(EXT_PN, "CRCW0805-10K");
        let right = loc("CRCW0805-10K", "resistor");
        let c = cmp.compare(&left, &right);
        assert_eq!(c.score, 1.0);
    }
}
