//! Record-pair comparison and match decisions.
//!
//! Once blocking (or the paper's classification rules) has produced candidate
//! pairs, a linking method compares the two descriptions and decides whether
//! they refer to the same real-world object. [`RecordComparator`] implements
//! the standard weighted-average scheme: per-attribute similarities combined
//! with weights, then thresholded into Match / Possible / NonMatch.
//!
//! A comparator is a schema-level *configuration* (property IRIs, measures,
//! weights). Before comparing it is [`compile`](RecordComparator::compile)d
//! against the two [`RecordStore`]s, resolving each rule's property IRIs to
//! interned ids **once** and lowering each rule's measure to a *kernel*:
//! either a scratch-buffer string kernel
//! (see [`SimScratch`]) or a precomputed-token-set kernel (see
//! [`crate::token_index`]).
//!
//! Two per-pair entry points share one evaluation core:
//!
//! * [`CompiledComparator::score`] — the pipeline's hot path: returns
//!   only `(score, decision)` and performs **zero heap allocations** in
//!   steady state (the caller owns the [`SimScratch`]; token sets come
//!   from the stores' [`TokenIndex`]).
//! * [`CompiledComparator::compare`] — the eval/report path: same
//!   arithmetic, but also materialises the per-rule
//!   [`details`](Comparison::details) vector.

use crate::intern::PropertyId;
use crate::similarity::scratch::SimScratch;
use crate::similarity::{
    damerau_levenshtein_similarity_with, jaro_winkler_with, jaro_with, levenshtein_similarity_with,
    SimilarityMeasure,
};
use crate::store::{RecordStore, ValueList};
use crate::token_index::{
    dice_bigrams_kernel, jaccard_bigrams_kernel, jaccard_tokens_kernel, monge_elkan_kernel,
    TokenIndex, ValueTokens,
};
use serde::{Deserialize, Serialize};

/// How one attribute pair contributes to the overall record similarity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeRule {
    /// Property IRI on the left (external) record.
    pub left_property: String,
    /// Property IRI on the right (local) record.
    pub right_property: String,
    /// Similarity measure for this attribute pair.
    pub measure: SimilarityMeasure,
    /// Relative weight (will be normalised over the rules that fired).
    pub weight: f64,
}

/// The outcome of comparing one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchDecision {
    /// The similarity exceeds the match threshold.
    Match,
    /// The similarity lies between the two thresholds.
    Possible,
    /// The similarity is below the non-match threshold.
    NonMatch,
}

/// The detailed result of one comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// The aggregated weighted similarity in `[0, 1]`.
    pub score: f64,
    /// The decision implied by the thresholds.
    pub decision: MatchDecision,
    /// Per-attribute-rule similarities (same order as the configured rules);
    /// `None` when one side had no value for the attribute.
    pub details: Vec<Option<f64>>,
}

/// Compares two records attribute by attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordComparator {
    /// The attribute comparison rules.
    pub rules: Vec<AttributeRule>,
    /// Score at or above which a pair is a [`MatchDecision::Match`].
    pub match_threshold: f64,
    /// Score below which a pair is a [`MatchDecision::NonMatch`].
    pub non_match_threshold: f64,
    /// When no configured attribute pair has values on both sides, fall back
    /// to comparing the records' full text with this measure.
    pub fallback: Option<SimilarityMeasure>,
}

impl RecordComparator {
    /// A comparator with the given attribute rules and default thresholds
    /// (match ≥ 0.85, non-match < 0.6).
    pub fn new(rules: Vec<AttributeRule>) -> Self {
        RecordComparator {
            rules,
            match_threshold: 0.85,
            non_match_threshold: 0.6,
            fallback: Some(SimilarityMeasure::MongeElkan),
        }
    }

    /// A single-attribute comparator (the common case for part numbers).
    pub fn single(
        left_property: impl Into<String>,
        right_property: impl Into<String>,
        measure: SimilarityMeasure,
    ) -> Self {
        Self::new(vec![AttributeRule {
            left_property: left_property.into(),
            right_property: right_property.into(),
            measure,
            weight: 1.0,
        }])
    }

    /// Set the decision thresholds (clamped so that `non_match ≤ match`).
    pub fn with_thresholds(mut self, match_threshold: f64, non_match_threshold: f64) -> Self {
        self.match_threshold = match_threshold.clamp(0.0, 1.0);
        self.non_match_threshold = non_match_threshold.clamp(0.0, self.match_threshold);
        self
    }

    /// Resolve every rule's property IRIs against the two stores. Ids are
    /// schema-local, so the compiled comparator is valid for this
    /// `(external, local)` store pair — and, when the stores were built on
    /// shared [`SchemaInterner`](crate::intern::SchemaInterner)s, for
    /// every other store on the same schemas.
    pub fn compile(&self, external: &RecordStore, local: &RecordStore) -> CompiledComparator<'_> {
        self.compile_schemas(external.interner(), local.interner())
    }

    /// Resolve every rule's property IRIs against two schemas directly —
    /// the sharded path: compiled once against
    /// [`ShardedStore::schema`](crate::shard::ShardedStore::schema), the
    /// comparator serves every shard. Each rule's measure (and the
    /// fallback, if any) is lowered to its kernel here, so the per-pair
    /// loop performs no dispatch set-up.
    pub fn compile_schemas(
        &self,
        external: &crate::intern::PropertyInterner,
        local: &crate::intern::PropertyInterner,
    ) -> CompiledComparator<'_> {
        let kernels: Vec<Kernel> = self.rules.iter().map(|r| Kernel::of(r.measure)).collect();
        let fallback_kernel = self.fallback.map(Kernel::of);
        let rules_use_sets = kernels.iter().any(|k| matches!(k, Kernel::Set(_)));
        CompiledComparator {
            comparator: self,
            properties: self
                .rules
                .iter()
                .map(|rule| {
                    (
                        external.get(&rule.left_property),
                        local.get(&rule.right_property),
                    )
                })
                .collect(),
            kernels,
            fallback_kernel,
            rules_use_sets,
        }
    }

    /// Convenience: compile against the two stores and compare one pair.
    /// Re-resolves the property IRIs on every call — callers comparing
    /// many pairs should [`compile`](Self::compile) once instead.
    pub fn compare(
        &self,
        external: &RecordStore,
        left_index: usize,
        local: &RecordStore,
        right_index: usize,
    ) -> Comparison {
        self.compile(external, local)
            .compare(external, left_index, local, right_index)
    }
}

/// One attribute rule's measure, lowered to its execution strategy at
/// compile time.
#[derive(Debug, Clone, Copy)]
enum Kernel {
    /// A scratch-buffer string kernel (edit/Jaro family).
    Str(fn(&mut SimScratch, &str, &str) -> f64),
    /// A precomputed-token-set kernel (Jaccard/Dice/Monge-Elkan family).
    Set(SetKernel),
}

/// The set-measure kernels backed by the stores' token indexes.
#[derive(Debug, Clone, Copy)]
enum SetKernel {
    /// Jaccard over token sets.
    JaccardTokens,
    /// Jaccard over bigram sets.
    JaccardBigrams,
    /// Dice over bigram sets.
    DiceBigrams,
    /// Monge-Elkan over token lists.
    MongeElkan,
}

impl Kernel {
    fn of(measure: SimilarityMeasure) -> Kernel {
        match measure {
            SimilarityMeasure::Levenshtein => Kernel::Str(levenshtein_similarity_with),
            SimilarityMeasure::DamerauLevenshtein => {
                Kernel::Str(damerau_levenshtein_similarity_with)
            }
            SimilarityMeasure::Jaro => Kernel::Str(jaro_with),
            SimilarityMeasure::JaroWinkler => Kernel::Str(jaro_winkler_with),
            SimilarityMeasure::JaccardTokens => Kernel::Set(SetKernel::JaccardTokens),
            SimilarityMeasure::JaccardChars => Kernel::Set(SetKernel::JaccardBigrams),
            SimilarityMeasure::DiceBigrams => Kernel::Set(SetKernel::DiceBigrams),
            SimilarityMeasure::MongeElkan => Kernel::Set(SetKernel::MongeElkan),
        }
    }
}

impl SetKernel {
    fn eval(
        self,
        a: &crate::token_index::ValueTokens<'_>,
        b: &crate::token_index::ValueTokens<'_>,
        scratch: &mut SimScratch,
    ) -> f64 {
        match self {
            SetKernel::JaccardTokens => jaccard_tokens_kernel(a, b),
            SetKernel::JaccardBigrams => jaccard_bigrams_kernel(a, b),
            SetKernel::DiceBigrams => dice_bigrams_kernel(a, b),
            SetKernel::MongeElkan => monge_elkan_kernel(a, b, scratch),
        }
    }
}

/// A [`RecordComparator`] with its property IRIs resolved to the interned
/// ids of one `(external, local)` store pair and its measures lowered to
/// kernels.
#[derive(Debug, Clone)]
pub struct CompiledComparator<'a> {
    comparator: &'a RecordComparator,
    /// `(left id on the external store, right id on the local store)` per
    /// attribute rule; `None` when a store never saw the IRI.
    properties: Vec<(Option<PropertyId>, Option<PropertyId>)>,
    /// The per-rule kernels, parallel to `properties`.
    kernels: Vec<Kernel>,
    /// The fallback measure's kernel, if a fallback is configured.
    fallback_kernel: Option<Kernel>,
    /// `true` when any *rule* kernel needs the stores' token indexes
    /// (the fallback builds lazily instead — it may never fire).
    rules_use_sets: bool,
}

/// Reusable hoisted left-side scoring state: one external record's
/// per-rule resolved value lists and token views, extracted **once per
/// candidate block** by [`CompiledComparator::hoist_left`] and then
/// shared by every [`CompiledComparator::score_hoisted`] call of the
/// block — the left side of a run-length candidate block is constant by
/// construction, so re-resolving it per pair is pure waste.
///
/// The buffers grow to the comparator's rule/value counts on first use
/// and are reused for every subsequent block (a comparison worker owns
/// one hoist for its whole run, next to its
/// [`SimScratch`]).
#[derive(Debug, Default)]
pub struct LeftHoist<'e> {
    /// The hoisted external record.
    left: usize,
    /// Per rule: the left value list (empty when the left property is
    /// unresolved or the record carries no value — the rule cannot
    /// fire).
    lists: Vec<ValueList<'e>>,
    /// Flat hoisted token views for set-kernel rules: rule `r` owns
    /// `tokens[token_offsets[r] .. token_offsets[r + 1]]`, one view per
    /// left value (empty for string-kernel rules).
    tokens: Vec<ValueTokens<'e>>,
    /// Per-rule boundaries into `tokens`; `len = rules + 1`.
    token_offsets: Vec<u32>,
}

impl LeftHoist<'_> {
    /// An empty hoist; the first [`CompiledComparator::hoist_left`]
    /// call sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty the hoist and release its borrow of the external store,
    /// **keeping the buffers' capacity**. The serving layer parks a
    /// `LeftHoist<'static>` in its per-caller scratch between probes and
    /// re-borrows it for each call, so a warm probe never re-allocates
    /// the hoist. Sound because every element is removed first: an empty
    /// `Vec<ValueList<'a>>` holds no `'a` data, only capacity.
    pub fn recycle<'b>(mut self) -> LeftHoist<'b> {
        self.token_offsets.clear();
        LeftHoist {
            left: 0,
            lists: recycle_vec(self.lists),
            tokens: recycle_vec(self.tokens),
            token_offsets: self.token_offsets,
        }
    }
}

/// Convert an emptied `Vec<A>` into a `Vec<B>` of the same capacity
/// without reallocating. `A` and `B` must be layout-identical (asserted)
/// — in practice two instantiations of one generic type differing only
/// in lifetime.
fn recycle_vec<A, B>(mut v: Vec<A>) -> Vec<B> {
    const {
        assert!(std::mem::size_of::<A>() == std::mem::size_of::<B>());
        assert!(std::mem::align_of::<A>() == std::mem::align_of::<B>());
    }
    v.clear();
    let mut v = std::mem::ManuallyDrop::new(v);
    let (ptr, capacity) = (v.as_mut_ptr(), v.capacity());
    // SAFETY: the vector is empty, so no `A` value is ever read as `B`;
    // size and alignment match (checked at compile time), so the
    // allocation's layout for `capacity` elements is identical under
    // either type; `ManuallyDrop` transfers sole ownership of the
    // buffer to the new vector.
    unsafe { Vec::from_raw_parts(ptr.cast::<B>(), 0, capacity) }
}

impl CompiledComparator<'_> {
    /// `true` when scoring will read the stores'
    /// [`TokenIndex`]es on every pair —
    /// the pipeline pre-warms the indexes in that case so parallel
    /// workers never serialise on the lazy build.
    pub fn uses_token_index(&self) -> bool {
        self.rules_use_sets
    }

    /// Resolve the external record `left`'s per-rule value lists (and,
    /// for set-kernel rules, its token views) **once**, into the
    /// reusable `out` — the per-block half of the hoisted scoring path;
    /// [`score_hoisted`](Self::score_hoisted) runs the per-pair half.
    pub fn hoist_left<'e>(&self, external: &'e RecordStore, left: usize, out: &mut LeftHoist<'e>) {
        out.left = left;
        out.lists.clear();
        out.tokens.clear();
        out.token_offsets.clear();
        out.token_offsets.push(0);
        let token_index = self.rules_use_sets.then(|| external.token_index());
        for (&(left_property, right_property), kernel) in self.properties.iter().zip(&self.kernels)
        {
            // A rule with either side unresolved can never fire
            // ([`score_hoisted`](Self::score_hoisted) skips it), so
            // don't pay its value-list or token-view extraction.
            let list = match (left_property, right_property) {
                (Some(lp), Some(_)) => external.value_list(left, lp),
                _ => ValueList::empty(),
            };
            if let (Kernel::Set(_), Some(index), Some(lp)) = (kernel, token_index, left_property) {
                for i in 0..list.len() {
                    out.tokens.push(index.value_tokens(
                        lp.index(),
                        list.value_index(i),
                        list.get(i),
                    ));
                }
            }
            out.token_offsets
                .push(u32::try_from(out.tokens.len()).expect("hoisted more than u32::MAX views"));
            out.lists.push(list);
        }
    }

    /// Score the hoisted external record (see
    /// [`hoist_left`](Self::hoist_left)) against local record `right`:
    /// same arithmetic as [`score`](Self::score) — the per-rule best
    /// pairing walks values and token views in identical order and the
    /// aggregation shares `finish_score` — so the
    /// result is **bit-identical**, only the left-side resolution work
    /// is amortised across the block
    /// (`crates/linking/tests/streaming_blocking.rs` pins the
    /// equivalence end-to-end).
    pub fn score_hoisted(
        &self,
        hoist: &LeftHoist<'_>,
        external: &RecordStore,
        local: &RecordStore,
        right: usize,
        scratch: &mut SimScratch,
    ) -> (f64, MatchDecision) {
        let local_index = self.rules_use_sets.then(|| local.token_index());
        let mut weighted_sum = 0.0;
        let mut weight_total = 0.0;
        for (rule_index, ((rule, &(_, right_property)), kernel)) in self
            .comparator
            .rules
            .iter()
            .zip(&self.properties)
            .zip(&self.kernels)
            .enumerate()
        {
            let Some(rp) = right_property else {
                continue;
            };
            let left_values = hoist.lists[rule_index];
            if left_values.is_empty() {
                continue;
            }
            let right_values = local.value_list(right, rp);
            if right_values.is_empty() {
                continue;
            }
            let mut best = 0.0f64;
            match *kernel {
                Kernel::Str(kernel) => {
                    for i in 0..left_values.len() {
                        let lv = left_values.get(i);
                        for j in 0..right_values.len() {
                            best = best.max(kernel(scratch, lv, right_values.get(j)));
                        }
                    }
                }
                Kernel::Set(kernel) => {
                    let local_index = local_index.expect("set kernels imply rules_use_sets");
                    let views = &hoist.tokens[hoist.token_offsets[rule_index] as usize
                        ..hoist.token_offsets[rule_index + 1] as usize];
                    for lv in views {
                        for j in 0..right_values.len() {
                            let rv = local_index.value_tokens(
                                rp.index(),
                                right_values.value_index(j),
                                right_values.get(j),
                            );
                            best = best.max(kernel.eval(lv, &rv, scratch));
                        }
                    }
                }
            }
            weighted_sum += best * rule.weight;
            weight_total += rule.weight;
        }
        self.finish_score(
            weighted_sum,
            weight_total,
            external,
            hoist.left,
            local,
            right,
            scratch,
        )
    }

    /// Score one candidate pair: the aggregated similarity and its
    /// threshold decision, nothing else.
    ///
    /// This is the pipeline's per-pair hot path: all working memory
    /// comes from `scratch` and the stores' precomputed token indexes,
    /// so the call performs **no heap allocation** in steady state.
    /// Bit-identical to [`compare`](Self::compare)'s score and decision.
    pub fn score(
        &self,
        external: &RecordStore,
        left: usize,
        local: &RecordStore,
        right: usize,
        scratch: &mut SimScratch,
    ) -> (f64, MatchDecision) {
        self.eval(external, left, local, right, scratch, |_| {})
    }

    /// Compare one candidate pair, given as record indexes into the stores
    /// this comparator was compiled against, materialising per-rule
    /// details.
    pub fn compare(
        &self,
        external: &RecordStore,
        left: usize,
        local: &RecordStore,
        right: usize,
    ) -> Comparison {
        let mut details = Vec::with_capacity(self.comparator.rules.len());
        let mut scratch = SimScratch::new();
        let (score, decision) = self.eval(external, left, local, right, &mut scratch, |detail| {
            details.push(detail)
        });
        Comparison {
            score,
            decision,
            details,
        }
    }

    /// The shared evaluation core of [`score`](Self::score) and
    /// [`compare`](Self::compare): `detail` observes each rule's
    /// similarity (`score` passes a no-op, which inlines away).
    #[inline]
    fn eval(
        &self,
        external: &RecordStore,
        left: usize,
        local: &RecordStore,
        right: usize,
        scratch: &mut SimScratch,
        mut detail: impl FnMut(Option<f64>),
    ) -> (f64, MatchDecision) {
        let comparator = self.comparator;
        // Resolved once per call; `token_index()` is an atomic load once
        // the index exists (the pipeline pre-warms it).
        let token_indexes: Option<(&TokenIndex, &TokenIndex)> = self
            .rules_use_sets
            .then(|| (external.token_index(), local.token_index()));
        let mut weighted_sum = 0.0;
        let mut weight_total = 0.0;
        for ((rule, &(left_property, right_property)), kernel) in comparator
            .rules
            .iter()
            .zip(&self.properties)
            .zip(&self.kernels)
        {
            let (Some(lp), Some(rp)) = (left_property, right_property) else {
                detail(None);
                continue;
            };
            let left_values = external.value_list(left, lp);
            let right_values = local.value_list(right, rp);
            if left_values.is_empty() || right_values.is_empty() {
                detail(None);
                continue;
            }
            // Best pairing across multi-valued attributes, indexing the
            // column slices directly (no per-left iterator clone).
            let mut best = 0.0f64;
            match *kernel {
                Kernel::Str(kernel) => {
                    for i in 0..left_values.len() {
                        let lv = left_values.get(i);
                        for j in 0..right_values.len() {
                            best = best.max(kernel(scratch, lv, right_values.get(j)));
                        }
                    }
                }
                Kernel::Set(kernel) => {
                    let (external_index, local_index) =
                        token_indexes.expect("set kernels imply rules_use_sets");
                    for i in 0..left_values.len() {
                        let lv = external_index.value_tokens(
                            lp.index(),
                            left_values.value_index(i),
                            left_values.get(i),
                        );
                        for j in 0..right_values.len() {
                            let rv = local_index.value_tokens(
                                rp.index(),
                                right_values.value_index(j),
                                right_values.get(j),
                            );
                            best = best.max(kernel.eval(&lv, &rv, scratch));
                        }
                    }
                }
            }
            detail(Some(best));
            weighted_sum += best * rule.weight;
            weight_total += rule.weight;
        }
        self.finish_score(
            weighted_sum,
            weight_total,
            external,
            left,
            local,
            right,
            scratch,
        )
    }

    /// The shared tail of every scoring path: fold the weighted rule
    /// similarities (or the full-text fallback when no rule fired) into
    /// the aggregated score and its threshold decision. Keeping this in
    /// one place is what makes the hoisted block path bit-identical to
    /// [`eval`](Self::eval).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn finish_score(
        &self,
        weighted_sum: f64,
        weight_total: f64,
        external: &RecordStore,
        left: usize,
        local: &RecordStore,
        right: usize,
        scratch: &mut SimScratch,
    ) -> (f64, MatchDecision) {
        let comparator = self.comparator;
        let score = if weight_total > 0.0 {
            weighted_sum / weight_total
        } else {
            match self.fallback_kernel {
                Some(Kernel::Str(kernel)) => {
                    kernel(scratch, external.full_text(left), local.full_text(right))
                }
                Some(Kernel::Set(kernel)) => {
                    // The fallback rarely fires; the dedicated full-text
                    // index builds lazily here, without taxing the
                    // per-value pre-warm (and vice versa).
                    let lv = external
                        .full_token_index()
                        .full_tokens(left, external.full_text(left));
                    let rv = local
                        .full_token_index()
                        .full_tokens(right, local.full_text(right));
                    kernel.eval(&lv, &rv, scratch)
                }
                None => 0.0,
            }
        };
        let decision = if score >= comparator.match_threshold {
            MatchDecision::Match
        } else if score < comparator.non_match_threshold {
            MatchDecision::NonMatch
        } else {
            MatchDecision::Possible
        };
        (score, decision)
    }

    /// `true` when the pair is decided as a match.
    pub fn is_match(
        &self,
        external: &RecordStore,
        left: usize,
        local: &RecordStore,
        right: usize,
    ) -> bool {
        let mut scratch = SimScratch::new();
        self.score(external, left, local, right, &mut scratch).1 == MatchDecision::Match
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use classilink_rdf::Term;

    const EXT_PN: &str = "http://provider.e.org/v#ref";
    const LOC_PN: &str = "http://local.e.org/v#partNumber";
    const LOC_LABEL: &str = "http://local.e.org/v#label";

    fn ext(pn: &str) -> RecordStore {
        let mut r = Record::new(Term::iri("http://provider.e.org/item/1"));
        r.add(EXT_PN, pn);
        RecordStore::from_records(&[r])
    }

    fn loc(pn: &str, label: &str) -> RecordStore {
        let mut r = Record::new(Term::iri("http://local.e.org/prod/1"));
        r.add(LOC_PN, pn);
        r.add(LOC_LABEL, label);
        RecordStore::from_records(&[r])
    }

    fn compare_single(
        cmp: &RecordComparator,
        external: &RecordStore,
        local: &RecordStore,
    ) -> Comparison {
        cmp.compile(external, local).compare(external, 0, local, 0)
    }

    #[test]
    fn identical_part_numbers_match() {
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler);
        let (e, l) = (ext("CRCW0805-10K"), loc("CRCW0805-10K", "resistor"));
        let c = compare_single(&cmp, &e, &l);
        assert_eq!(c.decision, MatchDecision::Match);
        assert_eq!(c.score, 1.0);
        assert_eq!(c.details, vec![Some(1.0)]);
        let l2 = loc("CRCW0805-10K", "r");
        assert!(cmp.compile(&e, &l2).is_match(&e, 0, &l2, 0));
    }

    #[test]
    fn small_typo_is_still_a_match_large_difference_is_not() {
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler);
        let e = ext("CRCW0805-10K");
        let typo = compare_single(&cmp, &e, &loc("CRCW0806-10K", "resistor"));
        assert_eq!(typo.decision, MatchDecision::Match);
        let different = compare_single(&cmp, &e, &loc("T83A225K", "capacitor"));
        assert_eq!(different.decision, MatchDecision::NonMatch);
    }

    #[test]
    fn thresholds_partition_scores() {
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein)
            .with_thresholds(0.9, 0.5);
        let possible = compare_single(&cmp, &ext("CRCW0805"), &loc("CRCW0899", "x"));
        assert_eq!(possible.decision, MatchDecision::Possible);
        assert!(possible.score < 0.9 && possible.score >= 0.5);
    }

    #[test]
    fn threshold_clamping() {
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Jaro)
            .with_thresholds(0.7, 0.9);
        assert!(cmp.non_match_threshold <= cmp.match_threshold);
        let cmp2 = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Jaro)
            .with_thresholds(5.0, -1.0);
        assert_eq!(cmp2.match_threshold, 1.0);
        assert_eq!(cmp2.non_match_threshold, 0.0);
    }

    #[test]
    fn multi_attribute_weighting() {
        let cmp = RecordComparator::new(vec![
            AttributeRule {
                left_property: EXT_PN.to_string(),
                right_property: LOC_PN.to_string(),
                measure: SimilarityMeasure::JaroWinkler,
                weight: 3.0,
            },
            AttributeRule {
                left_property: EXT_PN.to_string(),
                right_property: LOC_LABEL.to_string(),
                measure: SimilarityMeasure::JaccardTokens,
                weight: 1.0,
            },
        ]);
        let c = compare_single(
            &cmp,
            &ext("CRCW0805-10K"),
            &loc("CRCW0805-10K", "unrelated text"),
        );
        // pn similarity 1.0 (weight 3), label similarity 0 (weight 1) → 0.75.
        assert!((c.score - 0.75).abs() < 1e-9);
        assert_eq!(c.details.len(), 2);
    }

    #[test]
    fn missing_attributes_use_fallback() {
        let cmp =
            RecordComparator::single("http://nowhere.org/v#x", LOC_PN, SimilarityMeasure::Jaro);
        let (e, l) = (ext("CRCW0805-10K"), loc("CRCW0805-10K", "resistor"));
        let c = compare_single(&cmp, &e, &l);
        assert_eq!(c.details, vec![None]);
        // Fallback Monge-Elkan over full text still sees the identical part number.
        assert!(c.score > 0.5);
        let strict = RecordComparator {
            fallback: None,
            ..cmp
        };
        let c2 = compare_single(&strict, &e, &l);
        assert_eq!(c2.score, 0.0);
        assert_eq!(c2.decision, MatchDecision::NonMatch);
    }

    #[test]
    fn multi_valued_attributes_take_best_pairing() {
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein);
        let mut left = Record::new(Term::iri("http://provider.e.org/item/2"));
        left.add(EXT_PN, "completely different");
        left.add(EXT_PN, "CRCW0805-10K");
        let e = RecordStore::from_records(&[left]);
        let l = loc("CRCW0805-10K", "resistor");
        let c = compare_single(&cmp, &e, &l);
        assert_eq!(c.score, 1.0);
    }

    #[test]
    fn compiled_once_serves_many_pairs() {
        let cmp = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::Levenshtein);
        let external = RecordStore::from_records(&[
            {
                let mut r = Record::new(Term::iri("http://provider.e.org/item/1"));
                r.add(EXT_PN, "AAA");
                r
            },
            {
                let mut r = Record::new(Term::iri("http://provider.e.org/item/2"));
                r.add(EXT_PN, "BBB");
                r
            },
        ]);
        let local = RecordStore::from_records(&[{
            let mut r = Record::new(Term::iri("http://local.e.org/prod/1"));
            r.add(LOC_PN, "AAA");
            r
        }]);
        let compiled = cmp.compile(&external, &local);
        assert_eq!(compiled.compare(&external, 0, &local, 0).score, 1.0);
        assert_eq!(compiled.compare(&external, 1, &local, 0).score, 0.0);
        // The one-shot convenience agrees with the compiled path.
        assert_eq!(cmp.compare(&external, 1, &local, 0).score, 0.0);
    }

    #[test]
    fn score_agrees_with_compare_for_every_measure() {
        let mut scratch = SimScratch::new();
        for &measure in SimilarityMeasure::all() {
            let cmp = RecordComparator::single(EXT_PN, LOC_PN, measure);
            for (a, b) in [
                ("CRCW0805-10K", "CRCW0806-10K"),
                ("fixed film resistor", "film resistor"),
                ("", "x"),
                ("café", "cafe"),
            ] {
                let (e, l) = (ext(a), loc(b, "label"));
                let compiled = cmp.compile(&e, &l);
                let full = compiled.compare(&e, 0, &l, 0);
                let (score, decision) = compiled.score(&e, 0, &l, 0, &mut scratch);
                assert_eq!(full.score.to_bits(), score.to_bits(), "{}", measure.name());
                assert_eq!(full.decision, decision, "{}", measure.name());
            }
        }
    }

    #[test]
    fn uses_token_index_reflects_rule_measures() {
        let set = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::DiceBigrams);
        let string = RecordComparator::single(EXT_PN, LOC_PN, SimilarityMeasure::JaroWinkler);
        let (e, l) = (ext("x"), loc("x", "y"));
        assert!(set.compile(&e, &l).uses_token_index());
        // A string-measure rule set never touches the index, even though
        // the default fallback is Monge-Elkan (it builds lazily).
        assert!(!string.compile(&e, &l).uses_token_index());
    }
}
