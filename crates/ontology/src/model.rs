//! Core ontology entities: classes and properties.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A compact identifier for a class within one [`crate::Ontology`].
///
/// Ids are dense (assignable as vector indexes) and stable for the lifetime
/// of the ontology.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ClassId(pub u32);

impl ClassId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A compact identifier for a property within one [`crate::Ontology`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PropertyId(pub u32);

impl PropertyId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PropertyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An ontology class (`owl:Class`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OntClass {
    /// The class id within its ontology.
    pub id: ClassId,
    /// The full IRI of the class.
    pub iri: String,
    /// A human-readable label (`rdfs:label`), falling back to the IRI local
    /// name when absent.
    pub label: String,
    /// Direct superclasses (not the transitive closure).
    pub parents: Vec<ClassId>,
}

impl OntClass {
    /// `true` when the class has no declared superclass (a hierarchy root).
    pub fn is_root(&self) -> bool {
        self.parents.is_empty()
    }
}

/// The kind of value a data-type property carries. Only informative; the
/// learner treats all values as strings to segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DataKind {
    /// Free text or alphanumeric codes (part numbers, labels).
    #[default]
    Text,
    /// Numeric values.
    Numeric,
    /// Boolean flags.
    Boolean,
}

/// A data-type property (`owl:DatatypeProperty`): links an item to a literal.
///
/// These are the properties `p` of the paper's rules
/// `p(X, Y) ∧ subsegment(Y, a) ⇒ c(X)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataProperty {
    /// The property id within its ontology.
    pub id: PropertyId,
    /// The full IRI of the property.
    pub iri: String,
    /// Human-readable label.
    pub label: String,
    /// Optional domain class.
    pub domain: Option<ClassId>,
    /// The kind of literal the property carries.
    pub kind: DataKind,
}

/// An object property (`owl:ObjectProperty`): links an item to another item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectProperty {
    /// The property id within its ontology.
    pub id: PropertyId,
    /// The full IRI of the property.
    pub iri: String,
    /// Human-readable label.
    pub label: String,
    /// Optional domain class.
    pub domain: Option<ClassId>,
    /// Optional range class.
    pub range: Option<ClassId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_and_index() {
        assert_eq!(ClassId(4).to_string(), "c4");
        assert_eq!(ClassId(4).index(), 4);
        assert_eq!(PropertyId(2).to_string(), "p2");
        assert_eq!(PropertyId(2).index(), 2);
    }

    #[test]
    fn root_detection() {
        let root = OntClass {
            id: ClassId(0),
            iri: "http://e.org/c#Component".into(),
            label: "Component".into(),
            parents: vec![],
        };
        let child = OntClass {
            id: ClassId(1),
            iri: "http://e.org/c#Resistor".into(),
            label: "Resistor".into(),
            parents: vec![ClassId(0)],
        };
        assert!(root.is_root());
        assert!(!child.is_root());
    }

    #[test]
    fn data_kind_default_is_text() {
        assert_eq!(DataKind::default(), DataKind::Text);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ClassId(1) < ClassId(2));
        assert!(PropertyId(0) < PropertyId(9));
    }
}
