//! The ontology: classes, properties, subsumption hierarchy and disjointness.

use crate::error::{OntologyError, Result};
use crate::model::{ClassId, DataKind, DataProperty, ObjectProperty, OntClass, PropertyId};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// An OWL-lite ontology: a class hierarchy (`rdfs:subClassOf`), disjointness
/// axioms (`owl:disjointWith`) and data/object property declarations.
///
/// The hierarchy is a DAG (multiple inheritance is allowed, cycles are
/// rejected). All hierarchy queries (`ancestors`, `descendants`,
/// `is_subclass_of`, …) treat subsumption as reflexive and transitive, which
/// matches the RDFS semantics the paper relies on.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    classes: Vec<OntClass>,
    class_by_iri: HashMap<String, ClassId>,
    children: Vec<Vec<ClassId>>,
    data_properties: Vec<DataProperty>,
    data_prop_by_iri: HashMap<String, PropertyId>,
    object_properties: Vec<ObjectProperty>,
    object_prop_by_iri: HashMap<String, PropertyId>,
    /// Declared disjointness axioms, stored as ordered pairs (lo, hi).
    disjoint: HashSet<(ClassId, ClassId)>,
}

impl Ontology {
    /// An empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Classes
    // ------------------------------------------------------------------

    /// Declare a class. Returns the existing id if the IRI is already known.
    pub fn add_class(&mut self, iri: impl Into<String>, label: impl Into<String>) -> ClassId {
        let iri = iri.into();
        if let Some(id) = self.class_by_iri.get(&iri) {
            return *id;
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(OntClass {
            id,
            iri: iri.clone(),
            label: label.into(),
            parents: Vec::new(),
        });
        self.children.push(Vec::new());
        self.class_by_iri.insert(iri, id);
        id
    }

    /// Declare `sub rdfs:subClassOf sup`. Fails if the edge would create a
    /// cycle. Declaring the same edge twice is a no-op.
    pub fn add_subclass_axiom(&mut self, sub: ClassId, sup: ClassId) -> Result<()> {
        self.check_id(sub)?;
        self.check_id(sup)?;
        if sub == sup {
            return Err(OntologyError::SubsumptionCycle {
                sub: self.iri(sub).to_string(),
                sup: self.iri(sup).to_string(),
            });
        }
        // A cycle appears iff sup is already (transitively) a subclass of sub.
        if self.is_subclass_of(sup, sub) {
            return Err(OntologyError::SubsumptionCycle {
                sub: self.iri(sub).to_string(),
                sup: self.iri(sup).to_string(),
            });
        }
        if !self.classes[sub.index()].parents.contains(&sup) {
            self.classes[sub.index()].parents.push(sup);
            self.children[sup.index()].push(sub);
        }
        Ok(())
    }

    /// Number of declared classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// `true` when no class is declared.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Look up a class by IRI.
    pub fn class(&self, iri: &str) -> Option<ClassId> {
        self.class_by_iri.get(iri).copied()
    }

    /// Look up a class by IRI, returning an error when unknown.
    pub fn class_or_err(&self, iri: &str) -> Result<ClassId> {
        self.class(iri)
            .ok_or_else(|| OntologyError::UnknownClass(iri.to_string()))
    }

    /// Metadata of a class.
    pub fn class_info(&self, id: ClassId) -> Option<&OntClass> {
        self.classes.get(id.index())
    }

    /// The IRI of a class (panics on an id from another ontology).
    pub fn iri(&self, id: ClassId) -> &str {
        &self.classes[id.index()].iri
    }

    /// The label of a class (panics on an id from another ontology).
    pub fn label(&self, id: ClassId) -> &str {
        &self.classes[id.index()].label
    }

    /// Iterate over all classes in id order.
    pub fn classes(&self) -> impl Iterator<Item = &OntClass> {
        self.classes.iter()
    }

    /// All class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len() as u32).map(ClassId)
    }

    fn check_id(&self, id: ClassId) -> Result<()> {
        if id.index() < self.classes.len() {
            Ok(())
        } else {
            Err(OntologyError::UnknownClassId(id.0))
        }
    }

    // ------------------------------------------------------------------
    // Hierarchy queries
    // ------------------------------------------------------------------

    /// Direct superclasses of `id`.
    pub fn parents(&self, id: ClassId) -> &[ClassId] {
        &self.classes[id.index()].parents
    }

    /// Direct subclasses of `id`.
    pub fn children(&self, id: ClassId) -> &[ClassId] {
        &self.children[id.index()]
    }

    /// All (transitive) superclasses of `id`, excluding `id` itself, in
    /// breadth-first order (deduplicated).
    pub fn ancestors(&self, id: ClassId) -> Vec<ClassId> {
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<ClassId> = self.parents(id).iter().copied().collect();
        let mut out = Vec::new();
        while let Some(c) = queue.pop_front() {
            if seen.insert(c) {
                out.push(c);
                queue.extend(self.parents(c).iter().copied());
            }
        }
        out
    }

    /// All (transitive) subclasses of `id`, excluding `id` itself.
    pub fn descendants(&self, id: ClassId) -> Vec<ClassId> {
        let mut seen = BTreeSet::new();
        let mut queue: VecDeque<ClassId> = self.children(id).iter().copied().collect();
        let mut out = Vec::new();
        while let Some(c) = queue.pop_front() {
            if seen.insert(c) {
                out.push(c);
                queue.extend(self.children(c).iter().copied());
            }
        }
        out
    }

    /// Reflexive-transitive subsumption check: `true` when `sub` ⊑ `sup`.
    pub fn is_subclass_of(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue: VecDeque<ClassId> = self.parents(sub).iter().copied().collect();
        while let Some(c) = queue.pop_front() {
            if c == sup {
                return true;
            }
            if seen.insert(c) {
                queue.extend(self.parents(c).iter().copied());
            }
        }
        false
    }

    /// Classes without declared superclasses.
    pub fn roots(&self) -> Vec<ClassId> {
        self.classes
            .iter()
            .filter(|c| c.is_root())
            .map(|c| c.id)
            .collect()
    }

    /// Classes without subclasses — "the leaves of the ontology" on which the
    /// paper computes class frequencies (226 in its evaluation).
    pub fn leaves(&self) -> Vec<ClassId> {
        self.class_ids()
            .filter(|c| self.children(*c).is_empty())
            .collect()
    }

    /// `true` when `id` is a leaf class.
    pub fn is_leaf(&self, id: ClassId) -> bool {
        self.children(id).is_empty()
    }

    /// The depth of a class: 0 for roots, otherwise 1 + the minimum depth of
    /// its parents.
    pub fn depth(&self, id: ClassId) -> usize {
        let mut depth = 0;
        let mut frontier = vec![id];
        let mut seen = HashSet::new();
        loop {
            if frontier.iter().any(|c| self.parents(*c).is_empty()) {
                return depth;
            }
            let mut next = Vec::new();
            for c in frontier {
                for p in self.parents(c) {
                    if seen.insert(*p) {
                        next.push(*p);
                    }
                }
            }
            if next.is_empty() {
                return depth;
            }
            frontier = next;
            depth += 1;
        }
    }

    /// Least common ancestors of `a` and `b` (classes subsuming both with no
    /// subsumed class also subsuming both). Returns both inputs' common
    /// ancestors minimal w.r.t. subsumption; may be empty in a forest.
    pub fn least_common_ancestors(&self, a: ClassId, b: ClassId) -> Vec<ClassId> {
        let mut anc_a: BTreeSet<ClassId> = self.ancestors(a).into_iter().collect();
        anc_a.insert(a);
        let mut anc_b: BTreeSet<ClassId> = self.ancestors(b).into_iter().collect();
        anc_b.insert(b);
        let common: Vec<ClassId> = anc_a.intersection(&anc_b).copied().collect();
        common
            .iter()
            .copied()
            .filter(|c| {
                !common
                    .iter()
                    .any(|other| *other != *c && self.is_subclass_of(*other, *c))
            })
            .collect()
    }

    /// Keep only the most specific classes of `set`: drop any class that has
    /// a proper subclass also present in `set`.
    ///
    /// The paper computes class frequencies "only for the most specific
    /// classes of the ontology OL"; this is the corresponding operation on an
    /// item's asserted types.
    pub fn most_specific(&self, set: &[ClassId]) -> Vec<ClassId> {
        let unique: BTreeSet<ClassId> = set.iter().copied().collect();
        unique
            .iter()
            .copied()
            .filter(|c| {
                !unique
                    .iter()
                    .any(|other| *other != *c && self.is_subclass_of(*other, *c))
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Disjointness
    // ------------------------------------------------------------------

    /// Declare `a owl:disjointWith b`.
    pub fn add_disjoint_axiom(&mut self, a: ClassId, b: ClassId) -> Result<()> {
        self.check_id(a)?;
        self.check_id(b)?;
        if a == b {
            return Err(OntologyError::ConflictingDeclaration(
                self.iri(a).to_string(),
            ));
        }
        let pair = if a < b { (a, b) } else { (b, a) };
        self.disjoint.insert(pair);
        Ok(())
    }

    /// Number of declared disjointness axioms.
    pub fn disjoint_axiom_count(&self) -> usize {
        self.disjoint.len()
    }

    /// `true` when `a` and `b` are disjoint, i.e. some ancestor-or-self of
    /// `a` is declared disjoint with some ancestor-or-self of `b`.
    ///
    /// This is the "class disjunction" knowledge related work ([Saïs et al.
    /// 2009]) exploits to prune the reconciliation space.
    pub fn are_disjoint(&self, a: ClassId, b: ClassId) -> bool {
        if a == b || self.disjoint.is_empty() {
            return false;
        }
        let mut up_a = self.ancestors(a);
        up_a.push(a);
        let mut up_b = self.ancestors(b);
        up_b.push(b);
        for x in &up_a {
            for y in &up_b {
                let pair = if x < y { (*x, *y) } else { (*y, *x) };
                if self.disjoint.contains(&pair) {
                    return true;
                }
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Properties
    // ------------------------------------------------------------------

    /// Declare a data-type property. Returns the existing id if the IRI is
    /// already declared as a data property.
    pub fn add_data_property(
        &mut self,
        iri: impl Into<String>,
        label: impl Into<String>,
        domain: Option<ClassId>,
        kind: DataKind,
    ) -> PropertyId {
        let iri = iri.into();
        if let Some(id) = self.data_prop_by_iri.get(&iri) {
            return *id;
        }
        let id = PropertyId(self.data_properties.len() as u32);
        self.data_properties.push(DataProperty {
            id,
            iri: iri.clone(),
            label: label.into(),
            domain,
            kind,
        });
        self.data_prop_by_iri.insert(iri, id);
        id
    }

    /// Declare an object property.
    pub fn add_object_property(
        &mut self,
        iri: impl Into<String>,
        label: impl Into<String>,
        domain: Option<ClassId>,
        range: Option<ClassId>,
    ) -> PropertyId {
        let iri = iri.into();
        if let Some(id) = self.object_prop_by_iri.get(&iri) {
            return *id;
        }
        let id = PropertyId(self.object_properties.len() as u32);
        self.object_properties.push(ObjectProperty {
            id,
            iri: iri.clone(),
            label: label.into(),
            domain,
            range,
        });
        self.object_prop_by_iri.insert(iri, id);
        id
    }

    /// Look up a data property by IRI.
    pub fn data_property(&self, iri: &str) -> Option<&DataProperty> {
        self.data_prop_by_iri
            .get(iri)
            .map(|id| &self.data_properties[id.index()])
    }

    /// Look up an object property by IRI.
    pub fn object_property(&self, iri: &str) -> Option<&ObjectProperty> {
        self.object_prop_by_iri
            .get(iri)
            .map(|id| &self.object_properties[id.index()])
    }

    /// Iterate over declared data properties.
    pub fn data_properties(&self) -> impl Iterator<Item = &DataProperty> {
        self.data_properties.iter()
    }

    /// Iterate over declared object properties.
    pub fn object_properties(&self) -> impl Iterator<Item = &ObjectProperty> {
        self.object_properties.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Component ─┬─ Resistor ─┬─ FixedFilmResistor
    ///             │            └─ WirewoundResistor
    ///             └─ Capacitor ── TantalumCapacitor
    fn sample() -> (Ontology, [ClassId; 6]) {
        let mut o = Ontology::new();
        let component = o.add_class("http://e.org/c#Component", "Component");
        let resistor = o.add_class("http://e.org/c#Resistor", "Resistor");
        let fixed = o.add_class("http://e.org/c#FixedFilmResistor", "Fixed film resistor");
        let wire = o.add_class("http://e.org/c#WirewoundResistor", "Wirewound resistor");
        let capacitor = o.add_class("http://e.org/c#Capacitor", "Capacitor");
        let tantalum = o.add_class("http://e.org/c#TantalumCapacitor", "Tantalum capacitor");
        o.add_subclass_axiom(resistor, component).unwrap();
        o.add_subclass_axiom(fixed, resistor).unwrap();
        o.add_subclass_axiom(wire, resistor).unwrap();
        o.add_subclass_axiom(capacitor, component).unwrap();
        o.add_subclass_axiom(tantalum, capacitor).unwrap();
        o.add_disjoint_axiom(resistor, capacitor).unwrap();
        (o, [component, resistor, fixed, wire, capacitor, tantalum])
    }

    #[test]
    fn add_class_is_idempotent() {
        let mut o = Ontology::new();
        let a = o.add_class("http://e.org/c#A", "A");
        let b = o.add_class("http://e.org/c#A", "A again");
        assert_eq!(a, b);
        assert_eq!(o.class_count(), 1);
        assert_eq!(o.label(a), "A");
    }

    #[test]
    fn lookup_by_iri() {
        let (o, [component, ..]) = sample();
        assert_eq!(o.class("http://e.org/c#Component"), Some(component));
        assert_eq!(o.class("http://e.org/c#Nope"), None);
        assert!(o.class_or_err("http://e.org/c#Nope").is_err());
        assert_eq!(o.class_info(component).unwrap().label, "Component");
        assert!(o.class_info(ClassId(99)).is_none());
    }

    #[test]
    fn subsumption_is_reflexive_and_transitive() {
        let (o, [component, resistor, fixed, _, capacitor, tantalum]) = sample();
        assert!(o.is_subclass_of(fixed, fixed));
        assert!(o.is_subclass_of(fixed, resistor));
        assert!(o.is_subclass_of(fixed, component));
        assert!(o.is_subclass_of(tantalum, component));
        assert!(!o.is_subclass_of(component, fixed));
        assert!(!o.is_subclass_of(fixed, capacitor));
    }

    #[test]
    fn ancestors_and_descendants() {
        let (o, [component, resistor, fixed, wire, capacitor, tantalum]) = sample();
        assert_eq!(o.ancestors(fixed), vec![resistor, component]);
        assert!(o.ancestors(component).is_empty());
        let mut desc = o.descendants(component);
        desc.sort();
        assert_eq!(desc, vec![resistor, fixed, wire, capacitor, tantalum]);
        assert!(o.descendants(fixed).is_empty());
    }

    #[test]
    fn roots_and_leaves() {
        let (o, [component, _, fixed, wire, _, tantalum]) = sample();
        assert_eq!(o.roots(), vec![component]);
        let leaves = o.leaves();
        assert_eq!(leaves, vec![fixed, wire, tantalum]);
        assert!(o.is_leaf(fixed));
        assert!(!o.is_leaf(component));
    }

    #[test]
    fn depth_computation() {
        let (o, [component, resistor, fixed, ..]) = sample();
        assert_eq!(o.depth(component), 0);
        assert_eq!(o.depth(resistor), 1);
        assert_eq!(o.depth(fixed), 2);
    }

    #[test]
    fn cycle_rejection() {
        let (mut o, [component, resistor, fixed, ..]) = sample();
        assert!(matches!(
            o.add_subclass_axiom(component, fixed),
            Err(OntologyError::SubsumptionCycle { .. })
        ));
        assert!(o.add_subclass_axiom(resistor, resistor).is_err());
        // Re-adding an existing edge is fine.
        assert!(o.add_subclass_axiom(fixed, resistor).is_ok());
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let (mut o, [component, ..]) = sample();
        assert!(o.add_subclass_axiom(ClassId(99), component).is_err());
        assert!(o.add_disjoint_axiom(component, ClassId(99)).is_err());
    }

    #[test]
    fn disjointness_propagates_to_subclasses() {
        let (o, [component, resistor, fixed, _, capacitor, tantalum]) = sample();
        assert!(o.are_disjoint(resistor, capacitor));
        assert!(o.are_disjoint(fixed, tantalum));
        assert!(o.are_disjoint(tantalum, fixed));
        assert!(!o.are_disjoint(fixed, resistor));
        assert!(!o.are_disjoint(component, fixed));
        assert!(!o.are_disjoint(fixed, fixed));
        assert_eq!(o.disjoint_axiom_count(), 1);
    }

    #[test]
    fn self_disjointness_is_rejected() {
        let (mut o, [component, ..]) = sample();
        assert!(o.add_disjoint_axiom(component, component).is_err());
    }

    #[test]
    fn most_specific_filters_ancestors() {
        let (o, [component, resistor, fixed, wire, ..]) = sample();
        let ms = o.most_specific(&[component, resistor, fixed]);
        assert_eq!(ms, vec![fixed]);
        let ms2 = o.most_specific(&[fixed, wire]);
        assert_eq!(ms2, vec![fixed, wire]);
        let ms3 = o.most_specific(&[component, component]);
        assert_eq!(ms3, vec![component]);
        assert!(o.most_specific(&[]).is_empty());
    }

    #[test]
    fn least_common_ancestors_work() {
        let (o, [component, resistor, fixed, wire, _, tantalum]) = sample();
        assert_eq!(o.least_common_ancestors(fixed, wire), vec![resistor]);
        assert_eq!(o.least_common_ancestors(fixed, tantalum), vec![component]);
        assert_eq!(o.least_common_ancestors(fixed, fixed), vec![fixed]);
        assert_eq!(o.least_common_ancestors(fixed, resistor), vec![resistor]);
    }

    #[test]
    fn lca_empty_in_forest() {
        let mut o = Ontology::new();
        let a = o.add_class("http://e.org/c#A", "A");
        let b = o.add_class("http://e.org/c#B", "B");
        assert!(o.least_common_ancestors(a, b).is_empty());
    }

    #[test]
    fn properties_declared_and_looked_up() {
        let (mut o, [component, ..]) = sample();
        let pn = o.add_data_property(
            "http://e.org/v#partNumber",
            "part number",
            Some(component),
            DataKind::Text,
        );
        let again = o.add_data_property("http://e.org/v#partNumber", "pn", None, DataKind::Text);
        assert_eq!(pn, again);
        assert_eq!(o.data_properties().count(), 1);
        let p = o.data_property("http://e.org/v#partNumber").unwrap();
        assert_eq!(p.label, "part number");
        assert_eq!(p.domain, Some(component));
        assert!(o.data_property("http://e.org/v#nope").is_none());

        o.add_object_property(
            "http://e.org/v#hasPart",
            "has part",
            Some(component),
            Some(component),
        );
        assert_eq!(o.object_properties().count(), 1);
        assert!(o.object_property("http://e.org/v#hasPart").is_some());
        assert!(o.object_property("http://e.org/v#nope").is_none());
    }

    #[test]
    fn multiple_inheritance_is_supported() {
        let mut o = Ontology::new();
        let a = o.add_class("http://e.org/c#A", "A");
        let b = o.add_class("http://e.org/c#B", "B");
        let c = o.add_class("http://e.org/c#C", "C");
        o.add_subclass_axiom(c, a).unwrap();
        o.add_subclass_axiom(c, b).unwrap();
        assert!(o.is_subclass_of(c, a));
        assert!(o.is_subclass_of(c, b));
        assert_eq!(o.parents(c).len(), 2);
        assert_eq!(o.depth(c), 1);
    }

    proptest! {
        /// Random forests: every declared edge must be reflected by
        /// `is_subclass_of`, descendants/ancestors must be consistent, and
        /// leaves+internal nodes must partition the class set.
        #[test]
        fn prop_random_tree_consistency(parents in proptest::collection::vec(0usize..20, 1..40)) {
            let mut o = Ontology::new();
            let ids: Vec<ClassId> = (0..parents.len() + 1)
                .map(|i| o.add_class(format!("http://e.org/c#C{i}"), format!("C{i}")))
                .collect();
            // Node i+1 gets parent parents[i] % (i+1) — always an earlier node, so acyclic.
            for (i, p) in parents.iter().enumerate() {
                let child = ids[i + 1];
                let parent = ids[p % (i + 1)];
                o.add_subclass_axiom(child, parent).unwrap();
            }
            for (i, p) in parents.iter().enumerate() {
                let child = ids[i + 1];
                let parent = ids[p % (i + 1)];
                prop_assert!(o.is_subclass_of(child, parent));
                prop_assert!(o.descendants(parent).contains(&child));
                prop_assert!(o.ancestors(child).contains(&parent));
            }
            let leaves = o.leaves();
            let internal: Vec<ClassId> = o.class_ids().filter(|c| !o.is_leaf(*c)).collect();
            prop_assert_eq!(leaves.len() + internal.len(), o.class_count());
            // Root (node 0) subsumes every node in this construction.
            for id in o.class_ids() {
                prop_assert!(o.is_subclass_of(id, ids[0]));
            }
        }

        /// most_specific never returns a class subsumed by another member of
        /// the result, and always returns a subset of the input.
        #[test]
        fn prop_most_specific_is_antichain(raw in proptest::collection::vec(0u32..12, 1..10)) {
            let mut o = Ontology::new();
            let ids: Vec<ClassId> = (0..12)
                .map(|i| o.add_class(format!("http://e.org/c#C{i}"), format!("C{i}")))
                .collect();
            // Chain: C1 ⊑ C0, C2 ⊑ C1, ...
            for w in ids.windows(2) {
                o.add_subclass_axiom(w[1], w[0]).unwrap();
            }
            let input: Vec<ClassId> = raw.iter().map(|i| ids[*i as usize]).collect();
            let ms = o.most_specific(&input);
            for c in &ms {
                prop_assert!(input.contains(c));
                for other in &ms {
                    if c != other {
                        prop_assert!(!o.is_subclass_of(*other, *c));
                    }
                }
            }
            // In a chain the most specific set is exactly the deepest input class.
            let deepest = input.iter().max_by_key(|c| o.depth(**c)).copied().unwrap();
            prop_assert_eq!(ms, vec![deepest]);
        }
    }
}
