//! Error types for the ontology substrate.

use std::fmt;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, OntologyError>;

/// Errors raised while building or querying an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// A class IRI was referenced but never declared.
    UnknownClass(String),
    /// A class id was out of range for this ontology.
    UnknownClassId(u32),
    /// A property IRI was referenced but never declared.
    UnknownProperty(String),
    /// Declaring a subclass edge would introduce a cycle in the hierarchy.
    SubsumptionCycle {
        /// The subclass side of the offending edge.
        sub: String,
        /// The superclass side of the offending edge.
        sup: String,
    },
    /// The same IRI was declared twice with incompatible roles
    /// (e.g. both a class and a property).
    ConflictingDeclaration(String),
    /// An error bubbled up from the RDF layer during import/export.
    Rdf(String),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::UnknownClass(iri) => write!(f, "unknown class: {iri}"),
            OntologyError::UnknownClassId(id) => write!(f, "unknown class id: {id}"),
            OntologyError::UnknownProperty(iri) => write!(f, "unknown property: {iri}"),
            OntologyError::SubsumptionCycle { sub, sup } => {
                write!(f, "adding {sub} rdfs:subClassOf {sup} would create a cycle")
            }
            OntologyError::ConflictingDeclaration(iri) => {
                write!(f, "conflicting declaration for {iri}")
            }
            OntologyError::Rdf(msg) => write!(f, "rdf error: {msg}"),
        }
    }
}

impl std::error::Error for OntologyError {}

impl From<classilink_rdf::RdfError> for OntologyError {
    fn from(e: classilink_rdf::RdfError) -> Self {
        OntologyError::Rdf(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OntologyError::UnknownClass("c".into())
            .to_string()
            .contains("unknown class"));
        assert!(OntologyError::UnknownClassId(3).to_string().contains('3'));
        assert!(OntologyError::UnknownProperty("p".into())
            .to_string()
            .contains("unknown property"));
        let cycle = OntologyError::SubsumptionCycle {
            sub: "A".into(),
            sup: "B".into(),
        };
        assert!(cycle.to_string().contains("cycle"));
        assert!(OntologyError::ConflictingDeclaration("x".into())
            .to_string()
            .contains("conflicting"));
    }

    #[test]
    fn converts_rdf_error() {
        let rdf_err = classilink_rdf::RdfError::InvalidIri("bad".into());
        let e: OntologyError = rdf_err.into();
        assert!(matches!(e, OntologyError::Rdf(_)));
        assert!(e.to_string().contains("bad"));
    }
}
