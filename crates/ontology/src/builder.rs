//! Ergonomic ontology construction.

use crate::model::{ClassId, DataKind, PropertyId};
use crate::ontology::Ontology;

/// A convenience builder that names classes relative to a base namespace and
/// wires subclass edges as classes are declared.
///
/// ```
/// use classilink_ontology::builder::OntologyBuilder;
/// let mut b = OntologyBuilder::new("http://example.org/classes#");
/// let root = b.class("Component", None);
/// let resistor = b.class("Resistor", Some(root));
/// let onto = b.build();
/// assert!(onto.is_subclass_of(resistor, root));
/// ```
#[derive(Debug, Clone)]
pub struct OntologyBuilder {
    namespace: String,
    ontology: Ontology,
}

impl OntologyBuilder {
    /// Start building with the namespace used to mint class/property IRIs.
    pub fn new(namespace: impl Into<String>) -> Self {
        OntologyBuilder {
            namespace: namespace.into(),
            ontology: Ontology::new(),
        }
    }

    /// The namespace used to mint IRIs.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    fn mint(&self, local: &str) -> String {
        // Local names with spaces are CamelCased to stay IRI-safe.
        let cleaned: String = local
            .split_whitespace()
            .map(|w| {
                let mut chars = w.chars();
                match chars.next() {
                    Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
                    None => String::new(),
                }
            })
            .collect();
        format!("{}{}", self.namespace, cleaned)
    }

    /// Declare a class named `label` (IRI minted from the namespace), with an
    /// optional parent.
    pub fn class(&mut self, label: &str, parent: Option<ClassId>) -> ClassId {
        let iri = self.mint(label);
        let id = self.ontology.add_class(iri, label);
        if let Some(p) = parent {
            self.ontology
                .add_subclass_axiom(id, p)
                .expect("builder-created edges are acyclic");
        }
        id
    }

    /// Declare a class with an explicit full IRI.
    pub fn class_with_iri(&mut self, iri: &str, label: &str, parent: Option<ClassId>) -> ClassId {
        let id = self.ontology.add_class(iri, label);
        if let Some(p) = parent {
            self.ontology
                .add_subclass_axiom(id, p)
                .expect("builder-created edges are acyclic");
        }
        id
    }

    /// Add an extra `sub ⊑ sup` edge (for multiple inheritance).
    pub fn subclass(&mut self, sub: ClassId, sup: ClassId) -> &mut Self {
        self.ontology
            .add_subclass_axiom(sub, sup)
            .expect("builder subclass edge must not create a cycle");
        self
    }

    /// Declare a disjointness axiom between two classes.
    pub fn disjoint(&mut self, a: ClassId, b: ClassId) -> &mut Self {
        self.ontology
            .add_disjoint_axiom(a, b)
            .expect("builder disjointness axiom on distinct classes");
        self
    }

    /// Declare a text data property named `label`.
    pub fn data_property(&mut self, label: &str, domain: Option<ClassId>) -> PropertyId {
        let iri = self.mint_property(label);
        self.ontology
            .add_data_property(iri, label, domain, DataKind::Text)
    }

    /// Declare a data property with an explicit kind.
    pub fn data_property_kind(
        &mut self,
        label: &str,
        domain: Option<ClassId>,
        kind: DataKind,
    ) -> PropertyId {
        let iri = self.mint_property(label);
        self.ontology.add_data_property(iri, label, domain, kind)
    }

    /// Declare an object property named `label`.
    pub fn object_property(
        &mut self,
        label: &str,
        domain: Option<ClassId>,
        range: Option<ClassId>,
    ) -> PropertyId {
        let iri = self.mint_property(label);
        self.ontology.add_object_property(iri, label, domain, range)
    }

    fn mint_property(&self, local: &str) -> String {
        // camelCase for properties: first word lowercase, the rest capitalised.
        let mut words = local.split_whitespace();
        let mut out = String::new();
        if let Some(first) = words.next() {
            out.push_str(&first.to_lowercase());
        }
        for w in words {
            let mut chars = w.chars();
            if let Some(first) = chars.next() {
                out.push_str(&first.to_uppercase().collect::<String>());
                out.push_str(chars.as_str());
            }
        }
        format!("{}{}", self.namespace, out)
    }

    /// Read-only access to the ontology under construction.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Finish building.
    pub fn build(self) -> Ontology {
        self.ontology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_hierarchy_with_minted_iris() {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let root = b.class("Electronic component", None);
        let resistor = b.class("Fixed film resistance", Some(root));
        let onto = b.build();
        assert_eq!(onto.iri(root), "http://e.org/c#ElectronicComponent");
        assert_eq!(onto.iri(resistor), "http://e.org/c#FixedFilmResistance");
        assert_eq!(onto.label(resistor), "Fixed film resistance");
        assert!(onto.is_subclass_of(resistor, root));
    }

    #[test]
    fn class_with_explicit_iri() {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let a = b.class_with_iri("http://other.org/T83", "T83 family", None);
        let onto = b.build();
        assert_eq!(onto.iri(a), "http://other.org/T83");
    }

    #[test]
    fn property_iris_are_camel_cased() {
        let mut b = OntologyBuilder::new("http://e.org/v#");
        let root = b.class("Component", None);
        b.data_property("part number", Some(root));
        b.object_property("has manufacturer", Some(root), None);
        let onto = b.build();
        assert!(onto.data_property("http://e.org/v#partNumber").is_some());
        assert!(onto
            .object_property("http://e.org/v#hasManufacturer")
            .is_some());
    }

    #[test]
    fn disjoint_and_extra_subclass_edges() {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let root = b.class("Component", None);
        let r = b.class("Resistor", Some(root));
        let c = b.class("Capacitor", Some(root));
        let special = b.class("SpecialPart", None);
        b.disjoint(r, c);
        b.subclass(special, root);
        let onto = b.build();
        assert!(onto.are_disjoint(r, c));
        assert!(onto.is_subclass_of(special, root));
    }

    #[test]
    fn data_property_kind_is_recorded() {
        use crate::model::DataKind;
        let mut b = OntologyBuilder::new("http://e.org/v#");
        b.data_property_kind("rated voltage", None, DataKind::Numeric);
        let onto = b.build();
        assert_eq!(
            onto.data_property("http://e.org/v#ratedVoltage")
                .unwrap()
                .kind,
            DataKind::Numeric
        );
    }

    #[test]
    fn namespace_accessors() {
        let b = OntologyBuilder::new("http://e.org/c#");
        assert_eq!(b.namespace(), "http://e.org/c#");
        assert!(b.ontology().is_empty());
    }
}
