//! Summary statistics about an ontology.
//!
//! The paper characterises its ontology by exactly these numbers: "566
//! classes containing 226 classes in the leaves of the ontology". The
//! [`OntologyStats`] report lets experiments check that the synthetic
//! ontology reproduces that shape.

use crate::ontology::Ontology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate statistics describing the shape of an ontology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OntologyStats {
    /// Total number of classes.
    pub class_count: usize,
    /// Number of leaf classes (no subclasses).
    pub leaf_count: usize,
    /// Number of root classes (no superclasses).
    pub root_count: usize,
    /// Maximum depth over all classes.
    pub max_depth: usize,
    /// Mean depth over all classes.
    pub mean_depth: f64,
    /// Mean number of direct children over non-leaf classes.
    pub mean_branching: f64,
    /// Number of declared disjointness axioms.
    pub disjoint_axiom_count: usize,
    /// Number of declared data properties.
    pub data_property_count: usize,
    /// Number of declared object properties.
    pub object_property_count: usize,
    /// Histogram of class counts per depth (index = depth).
    pub depth_histogram: Vec<usize>,
}

impl OntologyStats {
    /// Compute statistics for `ontology`.
    pub fn compute(ontology: &Ontology) -> Self {
        let class_count = ontology.class_count();
        let leaves = ontology.leaves();
        let roots = ontology.roots();
        let depths: Vec<usize> = ontology.class_ids().map(|c| ontology.depth(c)).collect();
        let max_depth = depths.iter().copied().max().unwrap_or(0);
        let mean_depth = if class_count == 0 {
            0.0
        } else {
            depths.iter().sum::<usize>() as f64 / class_count as f64
        };
        let internal: Vec<_> = ontology
            .class_ids()
            .filter(|c| !ontology.is_leaf(*c))
            .collect();
        let mean_branching = if internal.is_empty() {
            0.0
        } else {
            internal
                .iter()
                .map(|c| ontology.children(*c).len())
                .sum::<usize>() as f64
                / internal.len() as f64
        };
        let mut depth_histogram = vec![0usize; max_depth + 1];
        if class_count > 0 {
            for d in &depths {
                depth_histogram[*d] += 1;
            }
        }
        OntologyStats {
            class_count,
            leaf_count: leaves.len(),
            root_count: roots.len(),
            max_depth,
            mean_depth,
            mean_branching,
            disjoint_axiom_count: ontology.disjoint_axiom_count(),
            data_property_count: ontology.data_properties().count(),
            object_property_count: ontology.object_properties().count(),
            depth_histogram,
        }
    }
}

impl fmt::Display for OntologyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "classes:            {}", self.class_count)?;
        writeln!(f, "  leaves:           {}", self.leaf_count)?;
        writeln!(f, "  roots:            {}", self.root_count)?;
        writeln!(f, "  max depth:        {}", self.max_depth)?;
        writeln!(f, "  mean depth:       {:.2}", self.mean_depth)?;
        writeln!(f, "  mean branching:   {:.2}", self.mean_branching)?;
        writeln!(f, "disjoint axioms:    {}", self.disjoint_axiom_count)?;
        writeln!(f, "data properties:    {}", self.data_property_count)?;
        write!(f, "object properties:  {}", self.object_property_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OntologyBuilder;

    #[test]
    fn stats_for_small_hierarchy() {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let root = b.class("Component", None);
        let r = b.class("Resistor", Some(root));
        let _f = b.class("FixedFilmResistor", Some(r));
        let _w = b.class("WirewoundResistor", Some(r));
        let c = b.class("Capacitor", Some(root));
        b.disjoint(r, c);
        b.data_property("part number", Some(root));
        let onto = b.build();
        let stats = OntologyStats::compute(&onto);
        assert_eq!(stats.class_count, 5);
        assert_eq!(stats.leaf_count, 3);
        assert_eq!(stats.root_count, 1);
        assert_eq!(stats.max_depth, 2);
        assert_eq!(stats.disjoint_axiom_count, 1);
        assert_eq!(stats.data_property_count, 1);
        assert_eq!(stats.object_property_count, 0);
        assert_eq!(stats.depth_histogram, vec![1, 2, 2]);
        // depths: component 0, resistor 1, capacitor 1, fixed 2, wirewound 2 → mean 6/5
        assert!((stats.mean_depth - 6.0 / 5.0).abs() < 1e-9);
        // internal nodes: root (2 children), resistor (2 children) → mean 2
        assert!((stats.mean_branching - 2.0).abs() < 1e-9);
        let rendered = stats.to_string();
        assert!(rendered.contains("classes:            5"));
    }

    #[test]
    fn stats_for_empty_ontology() {
        let stats = OntologyStats::compute(&Ontology::new());
        assert_eq!(stats.class_count, 0);
        assert_eq!(stats.leaf_count, 0);
        assert_eq!(stats.max_depth, 0);
        assert_eq!(stats.mean_depth, 0.0);
        assert_eq!(stats.mean_branching, 0.0);
    }
}
