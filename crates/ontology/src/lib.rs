//! # classilink-ontology
//!
//! An OWL-lite ontology substrate for the `classilink` workspace
//! (reproduction of *"Classification Rule Learning for Data Linking"*,
//! Pernelle & Saïs, LWDM @ EDBT 2012).
//!
//! The paper assumes the local data source `SL` is described by an OWL
//! ontology `OL`; the learnt classification rules conclude on classes of
//! `OL`, frequencies are computed "only for the most specific classes of the
//! ontology", and the future-work extension generalises rules by exploiting
//! "the semantics of the subsumption between classes". This crate provides
//! exactly those capabilities:
//!
//! * [`model`] — classes, data/object properties and their ids.
//! * [`ontology`] — the ontology itself: subsumption hierarchy with
//!   ancestor/descendant closure, leaves, depth, least common ancestors and
//!   disjointness axioms.
//! * [`instances`] — class-membership assertions for data items, direct and
//!   inferred extents, most-specific-class computation.
//! * [`builder`] — ergonomic construction.
//! * [`rdf_io`] — import/export from/to RDF graphs (`rdfs:subClassOf`,
//!   `owl:Class`, `owl:disjointWith`, `rdf:type`, …).
//! * [`stats`] — summary statistics (class counts, leaf counts, depth
//!   histograms) matching the numbers the paper reports about its ontology
//!   (566 classes, 226 leaves).
//!
//! ## Quick example
//!
//! ```
//! use classilink_ontology::builder::OntologyBuilder;
//!
//! let mut b = OntologyBuilder::new("http://example.org/classes#");
//! let component = b.class("Component", None);
//! let resistor = b.class("Resistor", Some(component));
//! let fixed_film = b.class("FixedFilmResistor", Some(resistor));
//! let capacitor = b.class("Capacitor", Some(component));
//! b.disjoint(resistor, capacitor);
//! let onto = b.build();
//!
//! assert!(onto.is_subclass_of(fixed_film, component));
//! assert!(onto.are_disjoint(fixed_film, capacitor));
//! assert_eq!(onto.leaves().len(), 2);
//! ```

pub mod builder;
pub mod error;
pub mod instances;
pub mod model;
pub mod ontology;
pub mod rdf_io;
pub mod stats;

pub use builder::OntologyBuilder;
pub use error::{OntologyError, Result};
pub use instances::InstanceStore;
pub use model::{ClassId, DataProperty, ObjectProperty, OntClass, PropertyId};
pub use ontology::Ontology;
pub use stats::OntologyStats;
