//! Class-membership assertions for data items.
//!
//! The paper needs, for the local source `SL`, the set of instances of each
//! class appearing in the training set (to compute class frequencies and the
//! linking subspaces). [`InstanceStore`] records `rdf:type` assertions and
//! answers extent queries both directly and under subsumption.

use crate::model::ClassId;
use crate::ontology::Ontology;
use classilink_rdf::Term;
use std::collections::{BTreeMap, BTreeSet};

/// A store of `item rdf:type class` assertions.
#[derive(Debug, Clone, Default)]
pub struct InstanceStore {
    /// item → asserted (direct) classes.
    types_of: BTreeMap<Term, BTreeSet<ClassId>>,
    /// class → directly asserted instances.
    extent: BTreeMap<ClassId, BTreeSet<Term>>,
}

impl InstanceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assert that `item` is an instance of `class`. Returns `true` if new.
    pub fn assert_type(&mut self, item: &Term, class: ClassId) -> bool {
        let inserted = self.types_of.entry(item.clone()).or_default().insert(class);
        if inserted {
            self.extent.entry(class).or_default().insert(item.clone());
        }
        inserted
    }

    /// The classes directly asserted for `item`.
    pub fn types_of(&self, item: &Term) -> Vec<ClassId> {
        self.types_of
            .get(item)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The most specific asserted classes of `item` according to `ontology`.
    pub fn most_specific_types(&self, item: &Term, ontology: &Ontology) -> Vec<ClassId> {
        let direct = self.types_of(item);
        ontology.most_specific(&direct)
    }

    /// All classes of `item`, closed under subsumption.
    pub fn inferred_types_of(&self, item: &Term, ontology: &Ontology) -> Vec<ClassId> {
        let mut all: BTreeSet<ClassId> = BTreeSet::new();
        for c in self.types_of(item) {
            all.insert(c);
            all.extend(ontology.ancestors(c));
        }
        all.into_iter().collect()
    }

    /// `true` when `item` is an instance of `class`, directly or through a
    /// subclass.
    pub fn is_instance_of(&self, item: &Term, class: ClassId, ontology: &Ontology) -> bool {
        self.types_of(item)
            .iter()
            .any(|c| ontology.is_subclass_of(*c, class))
    }

    /// Directly asserted instances of `class`.
    pub fn direct_extent(&self, class: ClassId) -> Vec<Term> {
        self.extent
            .get(&class)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Instances of `class` including those of its subclasses.
    pub fn extent(&self, class: ClassId, ontology: &Ontology) -> Vec<Term> {
        let mut out: BTreeSet<Term> = self
            .extent
            .get(&class)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        for sub in ontology.descendants(class) {
            if let Some(items) = self.extent.get(&sub) {
                out.extend(items.iter().cloned());
            }
        }
        out.into_iter().collect()
    }

    /// Size of the inferred extent of `class` (instances of it or any
    /// subclass) without materialising the term list.
    pub fn extent_size(&self, class: ClassId, ontology: &Ontology) -> usize {
        // Items may be asserted in several subclasses, so a set is needed.
        let mut seen: BTreeSet<&Term> = self
            .extent
            .get(&class)
            .map(|s| s.iter().collect())
            .unwrap_or_default();
        for sub in ontology.descendants(class) {
            if let Some(items) = self.extent.get(&sub) {
                seen.extend(items.iter());
            }
        }
        seen.len()
    }

    /// Number of items with at least one type assertion.
    pub fn item_count(&self) -> usize {
        self.types_of.len()
    }

    /// Total number of type assertions.
    pub fn assertion_count(&self) -> usize {
        self.types_of.values().map(BTreeSet::len).sum()
    }

    /// Iterate over all items with assertions.
    pub fn items(&self) -> impl Iterator<Item = &Term> {
        self.types_of.keys()
    }

    /// Iterate over `(class, direct extent size)` pairs.
    pub fn class_frequencies(&self) -> impl Iterator<Item = (ClassId, usize)> + '_ {
        self.extent.iter().map(|(c, items)| (*c, items.len()))
    }

    /// Populate the store from the `rdf:type` triples of a graph, resolving
    /// class IRIs against `ontology`. Unknown classes are skipped and
    /// returned in the second component.
    pub fn from_graph(graph: &classilink_rdf::Graph, ontology: &Ontology) -> (Self, Vec<String>) {
        use classilink_rdf::namespace::vocab;
        let mut store = InstanceStore::new();
        let mut unknown = Vec::new();
        let rdf_type = Term::iri(vocab::RDF_TYPE);
        for triple in graph.triples_matching(None, Some(&rdf_type), None) {
            let Some(class_iri) = triple.object.as_iri() else {
                continue;
            };
            match ontology.class(class_iri) {
                Some(class) => {
                    store.assert_type(&triple.subject, class);
                }
                None => unknown.push(class_iri.to_string()),
            }
        }
        unknown.sort();
        unknown.dedup();
        (store, unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OntologyBuilder;
    use classilink_rdf::{Graph, Triple};

    fn setup() -> (Ontology, [ClassId; 4]) {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let component = b.class("Component", None);
        let resistor = b.class("Resistor", Some(component));
        let fixed = b.class("FixedFilmResistor", Some(resistor));
        let capacitor = b.class("Capacitor", Some(component));
        (b.build(), [component, resistor, fixed, capacitor])
    }

    fn item(n: u32) -> Term {
        Term::iri(format!("http://e.org/prod/{n}"))
    }

    #[test]
    fn assert_and_query_types() {
        let (onto, [component, resistor, fixed, _]) = setup();
        let mut store = InstanceStore::new();
        assert!(store.assert_type(&item(1), fixed));
        assert!(!store.assert_type(&item(1), fixed));
        store.assert_type(&item(1), component);
        assert_eq!(store.types_of(&item(1)).len(), 2);
        assert_eq!(store.types_of(&item(9)).len(), 0);
        assert_eq!(store.most_specific_types(&item(1), &onto), vec![fixed]);
        let inferred = store.inferred_types_of(&item(1), &onto);
        assert!(inferred.contains(&resistor));
        assert!(inferred.contains(&component));
        assert_eq!(store.item_count(), 1);
        assert_eq!(store.assertion_count(), 2);
    }

    #[test]
    fn extents_respect_subsumption() {
        let (onto, [component, resistor, fixed, capacitor]) = setup();
        let mut store = InstanceStore::new();
        store.assert_type(&item(1), fixed);
        store.assert_type(&item(2), resistor);
        store.assert_type(&item(3), capacitor);
        assert_eq!(store.direct_extent(resistor).len(), 1);
        assert_eq!(store.extent(resistor, &onto).len(), 2);
        assert_eq!(store.extent(component, &onto).len(), 3);
        assert_eq!(store.extent_size(component, &onto), 3);
        assert_eq!(store.extent_size(fixed, &onto), 1);
        assert!(store.is_instance_of(&item(1), component, &onto));
        assert!(store.is_instance_of(&item(1), resistor, &onto));
        assert!(!store.is_instance_of(&item(3), resistor, &onto));
    }

    #[test]
    fn extent_size_deduplicates_multi_asserted_items() {
        let (onto, [component, resistor, fixed, _]) = setup();
        let mut store = InstanceStore::new();
        store.assert_type(&item(1), fixed);
        store.assert_type(&item(1), resistor);
        assert_eq!(store.extent_size(component, &onto), 1);
        assert_eq!(store.extent(component, &onto).len(), 1);
    }

    #[test]
    fn class_frequencies_are_direct_counts() {
        let (_, [_, resistor, fixed, _]) = setup();
        let mut store = InstanceStore::new();
        store.assert_type(&item(1), fixed);
        store.assert_type(&item(2), fixed);
        store.assert_type(&item(3), resistor);
        let freqs: std::collections::BTreeMap<ClassId, usize> = store.class_frequencies().collect();
        assert_eq!(freqs[&fixed], 2);
        assert_eq!(freqs[&resistor], 1);
    }

    #[test]
    fn from_graph_reads_rdf_type_triples() {
        let (onto, [_, _, fixed, _]) = setup();
        let mut g = Graph::new();
        g.insert(Triple::iris(
            "http://e.org/prod/1",
            classilink_rdf::namespace::vocab::RDF_TYPE,
            "http://e.org/c#FixedFilmResistor",
        ));
        g.insert(Triple::iris(
            "http://e.org/prod/2",
            classilink_rdf::namespace::vocab::RDF_TYPE,
            "http://e.org/c#UnknownClass",
        ));
        g.insert(Triple::literal(
            "http://e.org/prod/1",
            "http://e.org/v#pn",
            "CRCW0805",
        ));
        let (store, unknown) = InstanceStore::from_graph(&g, &onto);
        assert_eq!(store.item_count(), 1);
        assert_eq!(store.types_of(&item(1)), vec![fixed]);
        assert_eq!(unknown, vec!["http://e.org/c#UnknownClass".to_string()]);
    }

    #[test]
    fn empty_store_queries() {
        let (onto, [component, ..]) = setup();
        let store = InstanceStore::new();
        assert_eq!(store.item_count(), 0);
        assert_eq!(store.assertion_count(), 0);
        assert!(store.direct_extent(component).is_empty());
        assert!(store.extent(component, &onto).is_empty());
        assert_eq!(store.items().count(), 0);
    }
}
