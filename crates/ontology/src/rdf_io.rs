//! Import/export of ontologies from/to RDF graphs.
//!
//! The paper's local source `SL` is "described according to an OWL ontology
//! `OL`". This module reads such an ontology from its RDF serialisation
//! (classes, `rdfs:subClassOf`, `owl:disjointWith`, property declarations,
//! labels) and can write one back, so the synthetic generator and the
//! examples can exchange ontologies as Turtle/N-Triples files.

use crate::error::Result;
use crate::model::{ClassId, DataKind};
use crate::ontology::Ontology;
use classilink_rdf::namespace::vocab;
use classilink_rdf::{Graph, Term, Triple};
use std::collections::BTreeMap;

/// Load an ontology from an RDF graph.
///
/// Recognised vocabulary: `owl:Class`, `rdfs:subClassOf`, `owl:disjointWith`,
/// `owl:DatatypeProperty`, `owl:ObjectProperty`, `rdfs:domain`, `rdfs:range`
/// and `rdfs:label`. Subclass edges that would create a cycle are reported as
/// errors; everything else unknown is ignored.
pub fn from_graph(graph: &Graph) -> Result<Ontology> {
    let mut onto = Ontology::new();
    let rdf_type = Term::iri(vocab::RDF_TYPE);
    let rdfs_label = Term::iri(vocab::RDFS_LABEL);

    // Collect labels first so classes get them at declaration time.
    let mut labels: BTreeMap<String, String> = BTreeMap::new();
    for t in graph.triples_matching(None, Some(&rdfs_label), None) {
        if let (Some(iri), Some(lit)) = (t.subject.as_iri(), t.object.as_literal()) {
            labels.entry(iri.to_string()).or_insert(lit.value.clone());
        }
    }
    let label_for = |iri: &str, labels: &BTreeMap<String, String>| -> String {
        labels
            .get(iri)
            .cloned()
            .unwrap_or_else(|| Term::iri(iri).local_name().to_string())
    };

    // Classes: everything typed owl:Class, plus anything appearing in a
    // subClassOf or disjointWith axiom.
    let owl_class = Term::iri(vocab::OWL_CLASS);
    for t in graph.triples_matching(None, Some(&rdf_type), Some(&owl_class)) {
        if let Some(iri) = t.subject.as_iri() {
            onto.add_class(iri, label_for(iri, &labels));
        }
    }
    let sub_class_of = Term::iri(vocab::RDFS_SUBCLASS_OF);
    for t in graph.triples_matching(None, Some(&sub_class_of), None) {
        for term in [&t.subject, &t.object] {
            if let Some(iri) = term.as_iri() {
                onto.add_class(iri, label_for(iri, &labels));
            }
        }
    }
    let disjoint_with = Term::iri(vocab::OWL_DISJOINT_WITH);
    for t in graph.triples_matching(None, Some(&disjoint_with), None) {
        for term in [&t.subject, &t.object] {
            if let Some(iri) = term.as_iri() {
                onto.add_class(iri, label_for(iri, &labels));
            }
        }
    }

    // Subsumption.
    for t in graph.triples_matching(None, Some(&sub_class_of), None) {
        if let (Some(sub), Some(sup)) = (t.subject.as_iri(), t.object.as_iri()) {
            let sub_id = onto.class(sub).expect("declared above");
            let sup_id = onto.class(sup).expect("declared above");
            onto.add_subclass_axiom(sub_id, sup_id)?;
        }
    }

    // Disjointness.
    for t in graph.triples_matching(None, Some(&disjoint_with), None) {
        if let (Some(a), Some(b)) = (t.subject.as_iri(), t.object.as_iri()) {
            let a_id = onto.class(a).expect("declared above");
            let b_id = onto.class(b).expect("declared above");
            if a_id != b_id {
                onto.add_disjoint_axiom(a_id, b_id)?;
            }
        }
    }

    // Properties.
    let domain_of = |graph: &Graph, prop: &Term, onto: &Ontology| -> Option<ClassId> {
        graph
            .object_of(prop, &Term::iri(vocab::RDFS_DOMAIN))
            .and_then(|d| d.as_iri().and_then(|iri| onto.class(iri)))
    };
    let dt_prop = Term::iri(vocab::OWL_DATATYPE_PROPERTY);
    for t in graph.triples_matching(None, Some(&rdf_type), Some(&dt_prop)) {
        if let Some(iri) = t.subject.as_iri() {
            let domain = domain_of(graph, &t.subject, &onto);
            onto.add_data_property(iri, label_for(iri, &labels), domain, DataKind::Text);
        }
    }
    let obj_prop = Term::iri(vocab::OWL_OBJECT_PROPERTY);
    for t in graph.triples_matching(None, Some(&rdf_type), Some(&obj_prop)) {
        if let Some(iri) = t.subject.as_iri() {
            let domain = domain_of(graph, &t.subject, &onto);
            let range = graph
                .object_of(&t.subject, &Term::iri(vocab::RDFS_RANGE))
                .and_then(|r| r.as_iri().and_then(|iri| onto.class(iri)));
            onto.add_object_property(iri, label_for(iri, &labels), domain, range);
        }
    }

    Ok(onto)
}

/// Serialise an ontology into an RDF graph using the standard OWL/RDFS
/// vocabulary. Round-trips through [`from_graph`].
pub fn to_graph(ontology: &Ontology) -> Graph {
    let mut g = Graph::new();
    for class in ontology.classes() {
        g.insert(Triple::iris(&class.iri, vocab::RDF_TYPE, vocab::OWL_CLASS));
        g.insert(Triple::new(
            Term::iri(&class.iri),
            Term::iri(vocab::RDFS_LABEL),
            Term::literal(&class.label),
        ));
        for parent in &class.parents {
            g.insert(Triple::iris(
                &class.iri,
                vocab::RDFS_SUBCLASS_OF,
                ontology.iri(*parent),
            ));
        }
    }
    // Disjointness axioms are re-derived from pairwise checks over declared
    // axioms only; to keep the export faithful we emit each declared pair
    // once in each direction-normalised form.
    for a in ontology.class_ids() {
        for b in ontology.class_ids() {
            if a < b && ontology.are_disjoint(a, b) {
                // Only emit axioms between classes whose *parents* are not
                // already known-disjoint, i.e. the declared level. This keeps
                // the output compact while preserving semantics.
                let redundant = ontology
                    .parents(a)
                    .iter()
                    .any(|pa| ontology.are_disjoint(*pa, b))
                    || ontology
                        .parents(b)
                        .iter()
                        .any(|pb| ontology.are_disjoint(a, *pb));
                if !redundant {
                    g.insert(Triple::iris(
                        ontology.iri(a),
                        vocab::OWL_DISJOINT_WITH,
                        ontology.iri(b),
                    ));
                }
            }
        }
    }
    for p in ontology.data_properties() {
        g.insert(Triple::iris(
            &p.iri,
            vocab::RDF_TYPE,
            vocab::OWL_DATATYPE_PROPERTY,
        ));
        g.insert(Triple::new(
            Term::iri(&p.iri),
            Term::iri(vocab::RDFS_LABEL),
            Term::literal(&p.label),
        ));
        if let Some(domain) = p.domain {
            g.insert(Triple::iris(
                &p.iri,
                vocab::RDFS_DOMAIN,
                ontology.iri(domain),
            ));
        }
    }
    for p in ontology.object_properties() {
        g.insert(Triple::iris(
            &p.iri,
            vocab::RDF_TYPE,
            vocab::OWL_OBJECT_PROPERTY,
        ));
        g.insert(Triple::new(
            Term::iri(&p.iri),
            Term::iri(vocab::RDFS_LABEL),
            Term::literal(&p.label),
        ));
        if let Some(domain) = p.domain {
            g.insert(Triple::iris(
                &p.iri,
                vocab::RDFS_DOMAIN,
                ontology.iri(domain),
            ));
        }
        if let Some(range) = p.range {
            g.insert(Triple::iris(&p.iri, vocab::RDFS_RANGE, ontology.iri(range)));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OntologyBuilder;

    fn sample() -> Ontology {
        let mut b = OntologyBuilder::new("http://e.org/c#");
        let component = b.class("Component", None);
        let resistor = b.class("Resistor", Some(component));
        let _fixed = b.class("FixedFilmResistor", Some(resistor));
        let capacitor = b.class("Capacitor", Some(component));
        b.disjoint(resistor, capacitor);
        b.data_property("part number", Some(component));
        b.object_property("has manufacturer", Some(component), None);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let onto = sample();
        let graph = to_graph(&onto);
        let back = from_graph(&graph).unwrap();

        assert_eq!(back.class_count(), onto.class_count());
        let resistor = back.class("http://e.org/c#Resistor").unwrap();
        let fixed = back.class("http://e.org/c#FixedFilmResistor").unwrap();
        let capacitor = back.class("http://e.org/c#Capacitor").unwrap();
        let component = back.class("http://e.org/c#Component").unwrap();
        assert!(back.is_subclass_of(fixed, component));
        assert!(back.are_disjoint(fixed, capacitor));
        assert_eq!(back.label(resistor), "Resistor");
        assert!(back.data_property("http://e.org/v#partNumber").is_none());
        // properties were minted in the class namespace by the builder above
        assert!(back.data_property("http://e.org/c#partNumber").is_some());
        assert!(back
            .object_property("http://e.org/c#hasManufacturer")
            .is_some());
    }

    #[test]
    fn from_graph_handles_turtle_input() {
        let doc = r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix c: <http://e.org/c#> .

c:Component a owl:Class ; rdfs:label "Component" .
c:Resistor a owl:Class ; rdfs:subClassOf c:Component .
c:Capacitor a owl:Class ; rdfs:subClassOf c:Component ; owl:disjointWith c:Resistor .
c:partNumber a owl:DatatypeProperty ; rdfs:domain c:Component ; rdfs:label "part number" .
"#;
        let (graph, _) = classilink_rdf::turtle::parse(doc).unwrap();
        let onto = from_graph(&graph).unwrap();
        assert_eq!(onto.class_count(), 3);
        let resistor = onto.class("http://e.org/c#Resistor").unwrap();
        let capacitor = onto.class("http://e.org/c#Capacitor").unwrap();
        let component = onto.class("http://e.org/c#Component").unwrap();
        assert!(onto.is_subclass_of(resistor, component));
        assert!(onto.are_disjoint(resistor, capacitor));
        assert_eq!(onto.label(component), "Component");
        // Label falls back to local name when missing.
        assert_eq!(onto.label(resistor), "Resistor");
        let p = onto.data_property("http://e.org/c#partNumber").unwrap();
        assert_eq!(p.domain, Some(component));
        assert_eq!(p.label, "part number");
    }

    #[test]
    fn classes_appearing_only_in_axioms_are_declared() {
        let mut g = Graph::new();
        g.insert(Triple::iris(
            "http://e.org/c#A",
            vocab::RDFS_SUBCLASS_OF,
            "http://e.org/c#B",
        ));
        let onto = from_graph(&g).unwrap();
        assert_eq!(onto.class_count(), 2);
        let a = onto.class("http://e.org/c#A").unwrap();
        let b = onto.class("http://e.org/c#B").unwrap();
        assert!(onto.is_subclass_of(a, b));
    }

    #[test]
    fn cyclic_subclass_axioms_are_an_error() {
        let mut g = Graph::new();
        g.insert(Triple::iris(
            "http://e.org/c#A",
            vocab::RDFS_SUBCLASS_OF,
            "http://e.org/c#B",
        ));
        g.insert(Triple::iris(
            "http://e.org/c#B",
            vocab::RDFS_SUBCLASS_OF,
            "http://e.org/c#A",
        ));
        assert!(from_graph(&g).is_err());
    }

    #[test]
    fn empty_graph_gives_empty_ontology() {
        let onto = from_graph(&Graph::new()).unwrap();
        assert!(onto.is_empty());
        assert!(to_graph(&onto).is_empty());
    }

    #[test]
    fn self_disjointness_in_rdf_is_ignored() {
        let mut g = Graph::new();
        g.insert(Triple::iris(
            "http://e.org/c#A",
            vocab::OWL_DISJOINT_WITH,
            "http://e.org/c#A",
        ));
        let onto = from_graph(&g).unwrap();
        assert_eq!(onto.class_count(), 1);
        assert_eq!(onto.disjoint_axiom_count(), 0);
    }
}
