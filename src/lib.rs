//! # classilink
//!
//! Umbrella crate for the `classilink` workspace — a Rust reproduction of
//! *"Classification Rule Learning for Data Linking"* (Pernelle & Saïs,
//! LWDM @ EDBT 2012).
//!
//! This crate simply re-exports the workspace crates under stable module
//! names so that downstream users (and the `examples/`) need a single
//! dependency:
//!
//! * [`rdf`] — RDF substrate (graphs, datasets, N-Triples/Turtle, queries).
//! * [`ontology`] — OWL-lite ontology model with subsumption and instances.
//! * [`segment`] — property-value segmentation (separators, n-grams).
//! * [`core`] — the paper's contribution: classification rule learning,
//!   quality measures, rule ordering, linking subspaces.
//! * [`linking`] — similarity measures, record comparison, blocking
//!   baselines and the end-to-end linkage pipeline.
//! * [`datagen`] — synthetic electronic-components catalogs, provider
//!   documents and training sets reproducing the paper's data shape.
//! * [`eval`] — metrics, the Table 1 experiment and report rendering.

pub use classilink_core as core;
pub use classilink_datagen as datagen;
pub use classilink_eval as eval;
pub use classilink_linking as linking;
pub use classilink_ontology as ontology;
pub use classilink_rdf as rdf;
pub use classilink_segment as segment;

/// The version of the workspace, taken from the umbrella crate.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
